//! Dense-domain flat-array grouping for bounded keys, on both sides of
//! the shuffle.
//!
//! When a job declares both a radix codec ([`crate::JobSpec::with_radix_keys`])
//! and a bounded key domain ([`crate::EngineConfig::key_domain_hint`]),
//! the engine stops hashing and sorting:
//!
//! * **map side** ([`DenseTable`]): the combine step scatters pairs into a
//!   flat slot array indexed by the key's radix image, each distinct key's
//!   values accumulate in a recycled `Vec`, and the grouped output is
//!   emitted in ascending key order — byte-identical to the hash-map path
//!   it replaces (`group_combine`), enforced by differential tests;
//! * **reduce side** ([`DenseReducer`]): a partition's unsorted runs
//!   aggregate straight into a slot array sized to that partition's
//!   *actual* key range (`max − min + 1` radixes, never the full domain),
//!   and key groups are delivered to the reduce function in ascending key
//!   order with values in `(split id, arrival order)` order — the exact
//!   sequence of the sort/merge paths it replaces, with no sort at all.
//!
//! Both tables are owned by a worker and **reused across every task or
//! partition that worker processes**: slot arrays are reset via the
//! touched list (O(distinct keys), not O(domain)), and value vectors are
//! parked on a free list instead of dropped, so steady-state grouping
//! allocates nothing.

use crate::context::ReduceContext;
use crate::engine::ReduceDyn;

/// Flat-array combiner state for a bounded key domain. One per map
/// worker (or per streaming compactor), recycled across tasks.
pub(crate) struct DenseTable<K, V> {
    /// `radix → group index + 1`; 0 = untouched. Reset via `groups`.
    slots: Vec<u32>,
    /// First-touch-ordered groups: `(radix, key, values in arrival
    /// order)`. The key rides in an `Option` so emission can move it into
    /// the last surviving pair instead of cloning it.
    groups: Vec<(u64, Option<K>, Vec<V>)>,
    /// Recycled value vectors, refilled when groups are drained.
    spare: Vec<Vec<V>>,
    /// Scratch for the key-order emission pass.
    order: Vec<u32>,
}

impl<K, V> DenseTable<K, V> {
    /// A table for radixes in `[0, domain)`.
    pub(crate) fn new(domain: usize) -> Self {
        Self {
            slots: vec![0; domain],
            groups: Vec::new(),
            spare: Vec::new(),
            order: Vec::new(),
        }
    }
}

impl<K: Ord + Clone, V> DenseTable<K, V> {
    /// Groups `pairs` by key, applies `comb` once per key, and writes the
    /// surviving pairs back into `pairs` in ascending key order with each
    /// key's values in arrival order — the exact contract of
    /// [`crate::engine::group_combine`], without hashing and with every
    /// buffer recycled. Keys are moved, not cloned, except when a combiner
    /// leaves a key more than one surviving value.
    ///
    /// # Panics
    ///
    /// Panics when a key's radix falls outside the declared domain — a
    /// broken [`crate::EngineConfig::key_domain_hint`] must fail loudly
    /// rather than corrupt the grouping.
    pub(crate) fn combine(
        &mut self,
        pairs: &mut Vec<(K, V)>,
        radix_of: impl Fn(&K) -> u64,
        comb: &(dyn Fn(&K, &mut Vec<V>) + Send + Sync),
    ) {
        for (k, v) in pairs.drain(..) {
            let r = radix_of(&k) as usize;
            assert!(
                r < self.slots.len(),
                "key radix {r} outside the declared key_domain_hint {}",
                self.slots.len()
            );
            let slot = self.slots[r];
            if slot == 0 {
                let mut vs = self.spare.pop().unwrap_or_default();
                vs.push(v);
                self.groups.push((r as u64, Some(k), vs));
                self.slots[r] = self.groups.len() as u32;
            } else {
                self.groups[slot as usize - 1].2.push(v);
            }
        }

        // Emit in ascending key order: sort the touched radixes (distinct
        // keys only — O(d log d), never O(domain)).
        self.order.clear();
        self.order.extend(0..self.groups.len() as u32);
        let groups = &mut self.groups;
        self.order.sort_unstable_by_key(|&i| groups[i as usize].0);
        for &i in &self.order {
            let (r, key_slot, vs) = &mut groups[i as usize];
            self.slots[*r as usize] = 0;
            let key = key_slot.take().expect("each group emitted once");
            comb(&key, vs);
            let survivors = vs.len();
            let mut values = vs.drain(..);
            for v in values.by_ref().take(survivors.saturating_sub(1)) {
                pairs.push((key.clone(), v));
            }
            if let Some(last) = values.next() {
                pairs.push((key, last));
            }
        }
        // Park the value buffers for the next task.
        for (_, _, vs) in groups.drain(..) {
            self.spare.push(vs);
        }
    }
}

/// Tag on a slot entry meaning "no pair placed yet": until a slot's
/// first pair lands, its entry holds `FIRST_ARRIVAL | group index`, and
/// the pair that clears it parks its key for that group. Counts and
/// positions stay far below the tag bit (partition sizes are asserted
/// against it).
pub(crate) const FIRST_ARRIVAL: u32 = 1 << 31;

/// Flat-array reduce-side grouper for a bounded key domain: the dense
/// counterpart of the sort-at-reduce and merge strategies. One per reduce
/// worker thread, recycled across every partition that worker reduces.
///
/// The shape is a counting sort that never moves keys: a counting pass
/// over the runs (stashing each radix), a prefix pass laying the groups
/// out in ascending-key arena order, and a placement pass that moves
/// **values only** into the arena — each group's first arrival parks its
/// key. Emission then walks the arena once, sequentially, handing every
/// group to the reduce function. No comparison sort, no per-group
/// allocations, no key equality checks, and ~half the bytes moved of a
/// pair-permuting sort. One `u32` array serves as histogram and
/// write-cursor table both (the classic in-place counting-sort trick),
/// so the per-pair cache footprint matches a counting sort's histogram
/// and both hot passes reuse the same lines.
///
/// Unlike [`DenseTable`] this never clones a key and carries no `Ord`
/// bound: keys are moved in, borrowed by the reduce function, and
/// dropped; ordering comes entirely from the radix image (the sealed
/// [`crate::RadixKey`] contract makes radix order *be* key order).
pub(crate) struct DenseReducer<K, V> {
    /// The one per-radix table, indexed by `radix − lo` and sized to the
    /// widest partition key range seen so far. During the counting pass
    /// an entry is the slot's pair count; the prefix pass rewrites
    /// entries to `FIRST_ARRIVAL | group index`; the placement pass turns
    /// them into plain next-arena-position cursors. All-zero again after
    /// every partition (a vectorized fill in dense-scan mode, a touched
    /// walk in sparse mode).
    slots: Vec<u32>,
    /// Each group's key, parked by its first-arriving pair and `take`n at
    /// emission — sized to the group count, not the key range.
    keys: Vec<Option<K>>,
    /// Sparse mode only: buffer of slots touched by the counting pass,
    /// written branchlessly (the cursor advances only on first touches).
    touched: Vec<u32>,
    /// Buffer of each group's arena start, ascending-key order; only the
    /// first `groups` entries of a partition are meaningful.
    group_starts: Vec<u32>,
    /// Buffer of the slot behind each group — the emission/reset lookup.
    group_slots: Vec<u32>,
    /// Values in final grouped order: group-major (ascending key),
    /// `(split id, arrival order)` within a group.
    arena: Vec<Option<V>>,
    /// The contiguous value list handed to each reduce call.
    values: Vec<V>,
    /// Per-pair slot offsets (`radix − lo`) stashed by the counting pass
    /// so no later pass invokes the codec again. `u32` on purpose: slot
    /// offsets are bounded by the domain cap, and halving the stash
    /// halves the traffic of the two hottest passes.
    radixes: Vec<u32>,
}

impl<K, V> DenseReducer<K, V> {
    /// An empty reducer table; storage grows lazily to the key range and
    /// pair count of the largest partition it reduces.
    pub(crate) fn new() -> Self {
        Self {
            slots: Vec::new(),
            keys: Vec::new(),
            touched: Vec::new(),
            group_starts: Vec::new(),
            group_slots: Vec::new(),
            arena: Vec::new(),
            values: Vec::new(),
            radixes: Vec::new(),
        }
    }

    /// Reduces one partition: groups the (unsorted) `runs` by key and
    /// invokes `reduce` once per key, key groups in ascending key order
    /// and each group's values in `(split id, arrival order)` order —
    /// `runs` must arrive in split-id order with arrival order inside
    /// each run, exactly the shape the no-merge shuffle ships.
    ///
    /// # Panics
    ///
    /// Panics when a key's radix reaches `domain_hint` — a broken
    /// [`crate::EngineConfig::key_domain_hint`] must fail loudly rather
    /// than mis-group (the map-side table only validates when a combiner
    /// runs; this check covers combiner-less jobs too).
    pub(crate) fn reduce_runs<R>(
        &mut self,
        runs: Vec<Vec<(K, V)>>,
        radix_of: impl Fn(&K) -> u64,
        domain_hint: u64,
        reduce: &ReduceDyn<K, V, R>,
        rctx: &mut ReduceContext<R>,
    ) {
        let total: usize = runs.iter().map(Vec::len).sum();
        if total == 0 {
            return;
        }
        assert!(
            total < FIRST_ARRIVAL as usize,
            "partition exceeds tagged-u32 indexing"
        );
        assert!(
            domain_hint <= 1 << 32,
            "dense reduce requires a u32-sized key domain"
        );

        // Counting pass: extract every radix once, tracking the
        // partition's actual key range so the slot arrays cover
        // `max − min + 1` entries instead of the full declared domain.
        self.radixes.clear();
        self.radixes.reserve(total);
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for run in &runs {
            for (k, _) in run {
                let r = radix_of(k);
                lo = lo.min(r);
                hi = hi.max(r);
                // Truncation is safe: `hi` tracks the untruncated image,
                // and the assert below rejects anything over the domain
                // cap before the stash is ever used.
                self.radixes.push(r as u32);
            }
        }
        assert!(
            hi < domain_hint,
            "key radix {hi} outside the declared key_domain_hint {domain_hint}"
        );
        let width = (hi - lo + 1) as usize;
        if self.slots.len() < width {
            // Fresh entries are zero; previously used ones were zeroed by
            // the per-partition reset, so no clear is needed here.
            self.slots.resize(width, 0);
        }
        // Mode selection, fixed before counting: partitions whose pair
        // count justifies walking the whole slot range take the
        // branch-free dense-scan pipeline (no touched bookkeeping, no
        // comparison sort, vectorized reset); very sparse partitions —
        // the sampling builders' regime — track touched slots instead
        // and sort just those, O(d log d) with d ≪ width.
        let dense_scan = total * 16 >= width;

        // Counting pass, rebasing the stash to slot offsets on the way
        // through so the placement pass indexes with the subtraction
        // already done.
        let lo32 = lo as u32;
        let mut groups = 0usize;
        if dense_scan {
            for r in &mut self.radixes {
                *r -= lo32;
                self.slots[*r as usize] += 1;
            }
        } else {
            // Branch-free touched tracking: the write is unconditional,
            // the cursor advances only on first touches.
            if self.touched.len() < total {
                self.touched.resize(total, 0);
            }
            let mut d = 0usize;
            for r in &mut self.radixes {
                *r -= lo32;
                let slot = *r as usize;
                let count = self.slots[slot];
                self.touched[d] = *r;
                d += usize::from(count == 0);
                self.slots[slot] = count + 1;
            }
            groups = d;
        }

        // Prefix pass: lay the groups out in ascending-key arena order,
        // rewriting each slot from its count to a tagged group index. The
        // dense scan is branch-free — every iteration writes the current
        // group candidate and only the cursors advance conditionally —
        // which is what makes a full-range walk cheaper than sorting.
        // (It never records group slots: its reset is a range fill and
        // its emission indexes by group, so the buffer would be dead
        // weight.)
        let needed = if dense_scan {
            // The cursor trick writes at index `g ≤ groups`, and groups
            // is bounded by both the range width and the pair count.
            width.min(total) + 1
        } else {
            groups
        };
        if self.group_starts.len() < needed {
            self.group_starts.resize(needed, 0);
        }
        if !dense_scan && self.group_slots.len() < needed {
            self.group_slots.resize(needed, 0);
        }
        let mut running = 0u32;
        if dense_scan {
            let mut g = 0usize;
            for slot in 0..width {
                let count = self.slots[slot];
                self.group_starts[g] = running;
                self.slots[slot] = FIRST_ARRIVAL | g as u32;
                g += usize::from(count != 0);
                running += count;
            }
            groups = g;
        } else {
            self.touched[..groups].sort_unstable();
            for g in 0..groups {
                let slot = self.touched[g] as usize;
                let count = self.slots[slot];
                self.group_starts[g] = running;
                self.group_slots[g] = slot as u32;
                self.slots[slot] = FIRST_ARRIVAL | g as u32;
                running += count;
            }
        }
        self.keys.clear();
        self.keys.resize_with(groups, || None);
        self.arena.clear();
        self.arena.resize_with(total, || None);

        // Placement pass: move values (only values) into their final
        // grouped positions; a group's first arrival parks the key and
        // swaps the slot's tagged group index for a plain write cursor.
        let mut idx = 0usize;
        for run in runs {
            for (k, v) in run {
                let slot = self.radixes[idx] as usize;
                idx += 1;
                let entry = self.slots[slot];
                let pos = if entry & FIRST_ARRIVAL != 0 {
                    let g = (entry & !FIRST_ARRIVAL) as usize;
                    self.keys[g] = Some(k);
                    self.group_starts[g]
                } else {
                    entry
                };
                self.slots[slot] = pos + 1;
                self.arena[pos as usize] = Some(v);
            }
        }

        // Emission: one sequential walk of the arena, group by group. The
        // drain moves values out without writing tombstones back, and the
        // end boundary comes from the live group count, never from a
        // stale buffer entry.
        let mut drained = self.arena.drain(..);
        for g in 0..groups {
            let start = self.group_starts[g] as usize;
            let end = if g + 1 < groups {
                self.group_starts[g + 1] as usize
            } else {
                total
            };
            self.values.clear();
            self.values.extend(
                drained
                    .by_ref()
                    .take(end - start)
                    .map(|v| v.expect("every arena slot filled")),
            );
            let key = self.keys[g].take().expect("each group reduced once");
            reduce(&key, &self.values, rctx);
        }
        drop(drained);
        self.values.clear();

        // Reset so the table is all-zero for the next partition this
        // worker reduces (`keys` entries were `take`n back to `None`
        // above). The dense scan wrote every slot in the range, so it
        // resets with one vectorized fill; the sparse path only touched
        // the group slots.
        if dense_scan {
            self.slots[..width].fill(0);
        } else {
            for &slot in &self.group_slots[..groups] {
                self.slots[slot as usize] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::group_combine;

    type Pairs = Vec<(u32, u64)>;

    fn combine_both(
        pairs: Pairs,
        comb: impl Fn(&u32, &mut Vec<u64>) + Send + Sync + 'static,
        domain: usize,
    ) -> (Pairs, Pairs) {
        let via_hash = group_combine(pairs.clone(), &comb);
        let mut table = DenseTable::new(domain);
        let mut via_dense = pairs;
        table.combine(&mut via_dense, |k| u64::from(*k), &comb);
        (via_hash, via_dense)
    }

    #[test]
    fn matches_group_combine_byte_for_byte() {
        let pairs: Vec<(u32, u64)> = (0..500u64).map(|i| ((i * 7 % 40) as u32, i)).collect();
        let sum = |_k: &u32, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        };
        let (hash, dense) = combine_both(pairs, sum, 40);
        assert_eq!(hash, dense);
    }

    #[test]
    fn keeps_multi_value_lists_in_arrival_order() {
        let pairs = vec![(9u32, 1u64), (2, 2), (9, 3), (2, 4), (2, 5)];
        let keep = |_k: &u32, _vs: &mut Vec<u64>| {};
        let (hash, dense) = combine_both(pairs, keep, 16);
        assert_eq!(hash, dense);
        assert_eq!(dense, vec![(2, 2), (2, 4), (2, 5), (9, 1), (9, 3)]);
    }

    #[test]
    fn table_reuse_across_tasks_resets_cleanly() {
        let sum = |_k: &u32, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        };
        let mut table: DenseTable<u32, u64> = DenseTable::new(64);
        for round in 0..4u64 {
            let pairs: Vec<(u32, u64)> = (0..200u64)
                .map(|i| (((i + round) % 63) as u32, i))
                .collect();
            let want = group_combine(pairs.clone(), &sum);
            let mut got = pairs;
            table.combine(&mut got, |k| u64::from(*k), &sum);
            assert_eq!(got, want, "round {round}");
        }
        // Value buffers were parked, not dropped.
        assert!(!table.spare.is_empty());
        assert!(table.groups.is_empty());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let sum = |_k: &u32, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        };
        let mut table: DenseTable<u32, u64> = DenseTable::new(8);
        let mut empty: Vec<(u32, u64)> = vec![];
        table.combine(&mut empty, |k| u64::from(*k), &sum);
        assert!(empty.is_empty());
        let mut one = vec![(3u32, 41u64)];
        table.combine(&mut one, |k| u64::from(*k), &sum);
        assert_eq!(one, vec![(3, 41)]);
    }

    #[test]
    fn combiner_may_drop_every_value() {
        let drop_all = |_k: &u32, vs: &mut Vec<u64>| vs.clear();
        let pairs = vec![(1u32, 1u64), (2, 2), (1, 3)];
        let (hash, dense) = combine_both(pairs, drop_all, 4);
        assert_eq!(hash, dense);
        assert!(dense.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the declared key_domain_hint")]
    fn out_of_domain_key_fails_loudly() {
        let mut table: DenseTable<u32, u64> = DenseTable::new(4);
        let mut pairs = vec![(9u32, 1u64), (1, 2)];
        table.combine(&mut pairs, |k| u64::from(*k), &|_, _| {});
    }

    fn dense_reduce_groups(
        table: &mut DenseReducer<u32, u64>,
        runs: Vec<Vec<(u32, u64)>>,
        hint: u64,
    ) -> Vec<(u32, Vec<u64>)> {
        let mut rctx = ReduceContext::new();
        let reduce = |k: &u32, vs: &[u64], ctx: &mut ReduceContext<(u32, Vec<u64>)>| {
            ctx.emit((*k, vs.to_vec()));
        };
        table.reduce_runs(runs, |k| u64::from(*k), hint, &reduce, &mut rctx);
        rctx.outputs
    }

    #[test]
    fn reducer_groups_unsorted_runs_in_key_then_arrival_order() {
        // Runs are unsorted (arrival order inside a split); split order is
        // vector order — the shape sort-at-reduce partitions ship in.
        let runs = vec![
            vec![(5u32, 10u64), (1, 11), (5, 12)],
            vec![(2, 20), (1, 21)],
            vec![(9, 30), (5, 31), (2, 32)],
        ];
        let mut table = DenseReducer::new();
        assert_eq!(
            dense_reduce_groups(&mut table, runs, 16),
            vec![
                (1, vec![11, 21]),
                (2, vec![20, 32]),
                (5, vec![10, 12, 31]),
                (9, vec![30]),
            ]
        );
    }

    #[test]
    fn reducer_slot_array_sized_to_the_partition_key_range() {
        // Keys live in [1000, 1010): ten slots, not the declared 4096.
        let runs = vec![vec![(1009u32, 1u64), (1000, 2), (1004, 3)]];
        let mut table = DenseReducer::new();
        let got = dense_reduce_groups(&mut table, runs, 4096);
        assert_eq!(got, vec![(1000, vec![2]), (1004, vec![3]), (1009, vec![1])]);
        assert_eq!(
            table.slots.len(),
            10,
            "the slot table must cover max − min + 1 radixes, not the domain"
        );
    }

    #[test]
    fn reducer_recycles_cleanly_across_partitions() {
        let mut table = DenseReducer::new();
        for round in 0..4u64 {
            // Different key range each round, including a widening one.
            let base = (round * 37) as u32;
            let runs: Vec<Vec<(u32, u64)>> = (0..3)
                .map(|s| {
                    (0..50u64)
                        .map(|i| (base + ((i * 7 + s) % (20 + round * 9)) as u32, i))
                        .collect()
                })
                .collect();
            // Reference: stable sort of the split-ordered concatenation.
            let mut flat: Vec<(u32, u64)> = runs.iter().flatten().copied().collect();
            flat.sort_by_key(|&(k, _)| k);
            let mut want: Vec<(u32, Vec<u64>)> = Vec::new();
            for (k, v) in flat {
                match want.last_mut() {
                    Some((key, vs)) if *key == k => vs.push(v),
                    _ => want.push((k, vec![v])),
                }
            }
            assert_eq!(
                dense_reduce_groups(&mut table, runs, 1 << 10),
                want,
                "round {round}"
            );
            // Reset discipline: every touched slot is zeroed again, so
            // the next partition can trust the table without a clear.
            assert!(
                table.slots.iter().all(|&c| c == 0),
                "round {round}: slots reset"
            );
            assert!(
                table.keys.iter().all(Option::is_none),
                "round {round}: keys drained"
            );
        }
        // The arena kept its allocation across partitions.
        assert!(table.arena.capacity() > 0);
    }

    #[test]
    fn reducer_handles_empty_partitions() {
        let mut table: DenseReducer<u32, u64> = DenseReducer::new();
        assert!(dense_reduce_groups(&mut table, vec![], 8).is_empty());
        assert!(dense_reduce_groups(&mut table, vec![vec![], vec![]], 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the declared key_domain_hint")]
    fn reducer_rejects_keys_outside_the_hint() {
        let mut table: DenseReducer<u32, u64> = DenseReducer::new();
        dense_reduce_groups(&mut table, vec![vec![(8u32, 1u64), (1, 2)]], 8);
    }
}
