//! The multi-process executor: forked map workers, a self-healing
//! coordinating parent.
//!
//! `execute_multiprocess` runs the map phase of a job in child
//! processes and everything downstream (shuffle, reduce, Close hook,
//! stitching) in the coordinator, reusing the pipelined engine's own
//! `crate::engine::run_one_task` and
//! `crate::engine::shuffle_reduce_finish` — the two modes differ *only*
//! in how spills travel, which is what makes them bit-identical by
//! construction.
//!
//! ```text
//!  coordinator                               worker w (forked child)
//!  ───────────                               ───────────────────────
//!  split tasks round-robin ──fork──────────▶ runs its tasks via
//!  one pipe per worker                       run_one_task (combine,
//!  reader thread per pipe ◀──framed spill──  partition, pre-sort),
//!  (idle read deadline)                      streams TASK/RUN/PAIRS
//!  decode + CRC-verify frames                frames + per-task state
//!  commit tasks at TASK_END                  journal, then WORKER_END,
//!  reap children (waitpid)                   _exit(0)
//!  respawn failed workers' remaining tasks (bounded retries + backoff)
//!  shuffle_reduce_finish (shared code)
//!  ```
//!
//! Workers are **forked**, not spawned: map closures capture datasets and
//! `Arc` state that cannot cross an `exec`, but fork's copy-on-write
//! snapshot carries them for free — the same trick gives every round of a
//! multi-round algorithm (H-WTopk) its predecessor's replayed
//! [`crate::StateStore`] contents, playing the role of Hadoop's local
//! HDFS state files, and carries broadcast payloads like the paper's
//! Job-Configuration channel. The transport is the [`crate::transport`]
//! frame protocol over one Unix pipe per worker; the coordinator counts
//! [`crate::metrics::WireTraffic`] from the frames it actually decodes.
//!
//! ## Fault tolerance (PR 8)
//!
//! The unit of recovery is the **task**, and the commit point is its
//! `TASK_END` frame. The coordinator keeps, per worker slot, the list of
//! tasks not yet committed; when a worker dies mid-stream, truncates,
//! times out ([`crate::EngineError::WorkerTimeout`], enforced by an idle
//! read deadline on the pipe), or fails a frame checksum
//! ([`crate::EngineError::CorruptFrame`]), everything after its last
//! completed `TASK_END` — partial `PAIRS` runs, un-committed
//! `STATE_SAVE`/`STATE_TAKE` ops — is discarded, the straggler child is
//! SIGKILLed and reaped, and the slot's remaining tasks are re-executed
//! on a freshly forked worker (bounded by
//! [`crate::EngineConfig::max_task_retries`], with exponential backoff).
//! Because a task's spill depends only on the task itself (the existing
//! bit-identity contract across worker counts), and because each task's
//! state-journal ops ship *inside* the task (after its pairs, before its
//! `TASK_END`), a recovered run commits exactly one copy of every task's
//! pairs and ops — bit-identical outputs, logical metrics, and
//! `wire.pair_bytes == shuffle_bytes` even through recovery. Retry
//! activity is reported in [`crate::metrics::RecoveryStats`].
//!
//! Failure containment: a child that panics exits with
//! `transport::process::EXIT_PANIC`; one whose pipe dies exits with
//! `transport::process::EXIT_PIPE`; the coordinator reaps every child
//! unconditionally after its reader threads finish, then resolves the
//! most meaningful [`crate::EngineError`] per worker: a killed/aborted
//! worker wins over the truncated frame its death also caused, but a
//! timeout or checksum failure wins over the `SIGKILL` the *coordinator*
//! delivered in response. Only when a worker's retry budget is exhausted
//! does the error surface out of [`crate::try_run_job`].

use std::sync::atomic::{AtomicBool, Ordering};

/// Set (only) inside a forked map-worker process, before any task runs.
static IN_WORKER: AtomicBool = AtomicBool::new(false);

/// Whether the calling code is executing inside a forked map-worker
/// process of the multi-process engine. `false` in every in-process
/// engine mode and in the coordinator.
pub fn in_map_worker() -> bool {
    IN_WORKER.load(Ordering::Relaxed)
}

#[cfg(unix)]
pub(crate) use unix::execute_multiprocess;

#[cfg(not(unix))]
pub(crate) fn execute_multiprocess<K, V, R>(
    _cluster: &crate::cost::ClusterConfig,
    _spec: crate::job::JobSpec<K, V, R>,
) -> Result<crate::job::JobOutput<R>, crate::transport::EngineError> {
    Err(crate::transport::EngineError::Unsupported)
}

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::io::{BufWriter, Read};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    use crate::cost::ClusterConfig;
    use crate::engine::{
        dense_combine_domain, run_one_task, select_strategy, shuffle_reduce_finish, MapWorker,
        TaskSpill,
    };
    use crate::fault::ChildFaults;
    use crate::job::{JobOutput, JobSpec, MapTask, PairCodec, PartitionFn};
    use crate::metrics::{RecoveryStats, ReduceStrategy, WireTraffic};
    use crate::state::{StateOp, StateStore};
    use crate::transport::process::{self, DeadlineReader, Exit};
    use crate::transport::{tag, EngineError, FrameReader, FrameWriter, PAIR_CHUNK_BYTES};
    use crate::wire::{WireCodec, WireSize};

    /// One worker slot: the tasks assigned to it that have not yet
    /// committed, and how many processes were spawned for it so far.
    struct Slot<K, V> {
        tasks: Vec<MapTask<K, V>>,
        attempts: u32,
    }

    /// Executes one round with forked map workers, re-executing failed
    /// workers' unfinished tasks on respawned workers. See the module
    /// docs for the lifecycle; the reduce side runs in the coordinator
    /// via the shared [`shuffle_reduce_finish`].
    pub(crate) fn execute_multiprocess<K, V, R>(
        cluster: &ClusterConfig,
        spec: JobSpec<K, V, R>,
    ) -> Result<JobOutput<R>, EngineError>
    where
        K: Ord + std::hash::Hash + Clone + Send + WireSize + 'static,
        V: Send + WireSize + 'static,
        R: Send,
    {
        let JobSpec {
            map_tasks,
            combiner,
            partitioner,
            reduce,
            broadcast_bytes,
            finish,
            engine,
            key_codec,
            pair_codec,
            state,
            ..
        } = spec;
        assert!(engine.num_reducers >= 1, "need at least one reducer");
        let Some(codec) = pair_codec else {
            return Err(EngineError::MissingWireCodec);
        };
        let nparts = engine.num_reducers as usize;
        let dense_domain = dense_combine_domain(
            key_codec.is_some(),
            engine.key_domain_hint,
            combiner.is_some(),
        );
        let strategy = select_strategy(key_codec.is_some(), engine.key_domain_hint, nparts);

        // A job with no tasks has nothing to fork for; run the (empty)
        // downstream phases directly so the Close hook still fires.
        if map_tasks.is_empty() {
            return Ok(shuffle_reduce_finish(
                cluster,
                &engine,
                Vec::new(),
                &partitioner,
                reduce,
                finish,
                broadcast_bytes,
                strategy,
                key_codec,
                0.0,
            ));
        }

        // ---- Assign tasks to worker slots round-robin. Even a single
        // worker forks: the point of this mode is that the bytes
        // genuinely cross a process boundary. The parent keeps every
        // task (the child takes them from its own COW copy), which is
        // what makes re-execution after a failure possible at all. ----
        let map_start = std::time::Instant::now();
        let nworkers = engine.map_workers(map_tasks.len());
        let ntasks = map_tasks.len();
        let mut slots: Vec<Slot<K, V>> = (0..nworkers)
            .map(|_| Slot {
                tasks: Vec::new(),
                attempts: 0,
            })
            .collect();
        for (i, task) in map_tasks.into_iter().enumerate() {
            slots[i % nworkers].tasks.push(task);
        }
        let deadline =
            (engine.read_deadline_ms > 0).then(|| Duration::from_millis(engine.read_deadline_ms));

        let mut wire = WireTraffic {
            workers: nworkers as u32,
            comm_rounds: u32::from(broadcast_bytes > 0),
            ..Default::default()
        };
        let mut recovery = RecoveryStats::default();
        let mut per_task: Vec<TaskSpill<K, V>> = Vec::with_capacity(ntasks);
        let mut round = 0u32;

        // ---- Spawn/read/reap rounds until every task has committed.
        // Round 0 spawns every slot; later rounds respawn only slots
        // whose previous worker failed with tasks still uncommitted. ----
        loop {
            let live: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.tasks.is_empty())
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                break;
            }
            if round > 0 && engine.retry_backoff_ms > 0 {
                let shift = (round - 1).min(6);
                std::thread::sleep(Duration::from_millis(engine.retry_backoff_ms << shift));
            }

            let mut children: Vec<(usize, i32, Option<DeadlineReader>)> =
                Vec::with_capacity(live.len());
            for &slot_idx in &live {
                let slot = &mut slots[slot_idx];
                let child_faults = engine.faults.for_worker(slot_idx as u32, slot.attempts);
                slot.attempts += 1;
                recovery.attempts += 1;
                let (read_end, write_end) = process::pipe_pair()?;
                match process::fork_worker()? {
                    None => {
                        // Child: the parent's read end (and any earlier
                        // workers' read ends we inherited) just leak
                        // until _exit; only our write end matters.
                        drop(read_end);
                        super::IN_WORKER.store(true, Ordering::Relaxed);
                        if let Some(store) = &state {
                            store.begin_journal();
                        }
                        let my_tasks = std::mem::take(&mut slot.tasks);
                        let status = catch_unwind(AssertUnwindSafe(|| {
                            child_main(
                                my_tasks,
                                write_end,
                                &engine,
                                nparts,
                                strategy,
                                &combiner,
                                &partitioner,
                                key_codec,
                                codec,
                                state.as_deref(),
                                dense_domain,
                                child_faults,
                            )
                        }));
                        process::exit_now(match status {
                            Ok(Ok(())) => 0,
                            // Write failure: the coordinator hung up (or
                            // the pipe broke) — nothing left to report to.
                            Ok(Err(_)) => process::EXIT_PIPE,
                            Err(_) => process::EXIT_PANIC,
                        });
                    }
                    Some(pid) => {
                        // Parent: drop our copy of the write end
                        // immediately, or the reader would never see EOF.
                        drop(write_end);
                        children.push((
                            slot_idx,
                            pid,
                            Some(DeadlineReader::new(read_end, deadline)),
                        ));
                    }
                }
            }

            // ---- Read every live stream concurrently (a pipe holds
            // only ~64 KiB; workers block when it fills, so the
            // coordinator must drain all pipes at once). A reader that
            // panics or finds its pipe missing is a typed Protocol
            // error, never a coordinator abort. ----
            let mut harvests: Vec<(Harvest<K, V>, Result<(), EngineError>)> =
                Vec::with_capacity(children.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = children
                    .iter_mut()
                    .map(|(_, _, read_end)| {
                        read_end.take().map(|r| {
                            scope.spawn(move || {
                                read_worker_stream(r, codec, engine.read_deadline_ms)
                            })
                        })
                    })
                    .collect();
                for h in handles {
                    harvests.push(match h {
                        Some(handle) => handle.join().unwrap_or_else(|_| {
                            (
                                Harvest::empty(),
                                Err(EngineError::Protocol("reader thread panicked")),
                            )
                        }),
                        None => (
                            Harvest::empty(),
                            Err(EngineError::Protocol("worker pipe already consumed")),
                        ),
                    });
                }
            });

            // ---- A worker that tripped the read deadline is still
            // alive (that is what a stall *is*): SIGKILL it so the
            // unconditional reap below cannot block on it. Other stream
            // errors need no signal — the erroring reader dropped its
            // pipe end, so a still-writing child dies of `EPIPE` on its
            // own. `killed` remembers whether *we* delivered the SIGKILL
            // (a `kill` also "succeeds" against an already-dead unreaped
            // child, hence the timeout-only condition), so the reaper
            // below can tell our kill from a worker's own death. ----
            let mut killed = Vec::with_capacity(children.len());
            for ((_, pid, _), (_, status)) in children.iter().zip(&harvests) {
                killed.push(
                    matches!(status, Err(EngineError::WorkerTimeout { .. }))
                        && process::kill_process(*pid),
                );
            }
            let mut exits = Vec::with_capacity(children.len());
            for (_, pid, _) in &children {
                exits.push(process::wait_for(*pid)?);
            }

            // ---- Per worker: commit completed tasks (their pairs and
            // state ops count exactly once, which keeps
            // `wire.pair_bytes == shuffle_bytes` true through
            // recovery), then resolve failures into retry-or-error. ----
            for (i, (harvest, status)) in harvests.into_iter().enumerate() {
                let (slot_idx, _, _) = children[i];
                let slot = &mut slots[slot_idx];
                // Physical traffic is counted as received, retries and
                // discarded partial tasks included — it measures what
                // crossed the pipes, not what survived.
                wire.frame_bytes += harvest.frame_bytes;
                wire.frames += harvest.frames;
                for done in harvest.completed {
                    let Some(pos) = slot
                        .tasks
                        .iter()
                        .position(|t| t.split_id == done.spill.split_id)
                    else {
                        return Err(EngineError::Protocol("TASK_END for an unassigned task"));
                    };
                    slot.tasks.remove(pos);
                    wire.pair_bytes += done.pair_bytes;
                    wire.state_bytes += done.state_bytes;
                    per_task.push(done.spill);
                    if let Some(store) = &state {
                        for op in done.state_ops {
                            store.apply(op);
                        }
                    }
                }

                let death = match exits[i] {
                    // A self-inflicted death explains the stream error it
                    // caused; a SIGKILL *we* sent does not.
                    Exit::Signal(signal) if !(killed[i] && signal == process::SIGKILL) => {
                        Some(EngineError::WorkerDied {
                            worker: slot_idx,
                            exit_code: None,
                            signal: Some(signal),
                        })
                    }
                    Exit::Code(code) if code != 0 && code != process::EXIT_PIPE => {
                        Some(EngineError::WorkerDied {
                            worker: slot_idx,
                            exit_code: Some(code),
                            signal: None,
                        })
                    }
                    _ => None,
                };
                let failure = match (death, status) {
                    (Some(d), _) => Some(d),
                    (None, Err(e)) => Some(rewrite_worker(e, slot_idx)),
                    // EXIT_PIPE without any stream error: the pipe broke
                    // under a worker whose stream looked fine — still a
                    // failed attempt.
                    (None, Ok(())) => match exits[i] {
                        Exit::Code(code) if code == process::EXIT_PIPE => {
                            Some(EngineError::WorkerDied {
                                worker: slot_idx,
                                exit_code: Some(code),
                                signal: None,
                            })
                        }
                        _ => None,
                    },
                };

                match failure {
                    None => {
                        if !slot.tasks.is_empty() {
                            // Clean stream, clean exit, but tasks
                            // missing: the worker lied about its count.
                            return Err(EngineError::Protocol("task count mismatch"));
                        }
                    }
                    Some(err) => {
                        match &err {
                            EngineError::WorkerTimeout { .. } => recovery.timeouts += 1,
                            EngineError::CorruptFrame { .. } => recovery.corrupt_frames += 1,
                            _ => {}
                        }
                        if slot.tasks.is_empty() {
                            // Every assigned task already committed; the
                            // failure hit after the last TASK_END (e.g. a
                            // cut WORKER_END). The committed, checksummed
                            // data is complete — nothing to re-execute.
                            continue;
                        }
                        if slot.attempts > engine.max_task_retries {
                            return Err(err);
                        }
                        recovery.tasks_retried += slot.tasks.len() as u64;
                        recovery.workers_respawned += 1;
                    }
                }
            }
            round += 1;
        }

        if per_task.len() != ntasks {
            return Err(EngineError::Protocol("task count mismatch"));
        }
        per_task.sort_by_key(|t| t.split_id);
        let wall_map_s = map_start.elapsed().as_secs_f64();

        let mut out = shuffle_reduce_finish(
            cluster,
            &engine,
            per_task,
            &partitioner,
            reduce,
            finish,
            broadcast_bytes,
            strategy,
            key_codec,
            wall_map_s,
        );
        out.metrics.wire = wire;
        out.metrics.recovery = recovery;
        Ok(out)
    }

    /// Rewrites the placeholder worker index the stream layer reports
    /// with the worker's real slot index.
    fn rewrite_worker(e: EngineError, worker: usize) -> EngineError {
        match e {
            EngineError::TruncatedFrame { .. } => EngineError::TruncatedFrame { worker },
            EngineError::CorruptFrame { .. } => EngineError::CorruptFrame { worker },
            EngineError::WorkerTimeout { deadline_ms, .. } => EngineError::WorkerTimeout {
                worker,
                deadline_ms,
            },
            other => other,
        }
    }

    /// The forked child's whole life: run the assigned tasks through the
    /// shared map-task unit, stream each spill as frames followed by the
    /// task's state-journal ops and its `TASK_END` (the commit point),
    /// close with `WORKER_END`, flush. Any `Err` means the pipe is gone
    /// and the child exits `EXIT_PIPE`. Armed [`ChildFaults`] fire here:
    /// they exist so the chaos suite can manufacture each failure mode
    /// deterministically.
    #[allow(clippy::too_many_arguments)]
    fn child_main<K, V>(
        tasks: Vec<MapTask<K, V>>,
        write_end: File,
        engine: &crate::engine::EngineConfig,
        nparts: usize,
        strategy: ReduceStrategy,
        combiner: &Option<crate::job::CombineFn<K, V>>,
        partitioner: &PartitionFn<K>,
        key_codec: Option<fn(&K) -> u64>,
        codec: PairCodec<K, V>,
        state: Option<&StateStore>,
        dense_domain: Option<usize>,
        faults: ChildFaults,
    ) -> std::io::Result<()>
    where
        K: Ord + Clone + Send + WireSize + 'static,
        V: Send + WireSize + 'static,
    {
        if let Some(ms) = faults.stall_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let mut writer = FrameWriter::with_faults(
            BufWriter::with_capacity(PAIR_CHUNK_BYTES, write_end),
            faults.writer,
        );
        let mut worker_state = MapWorker::new(key_codec, dense_domain);
        let ntasks = tasks.len() as u32;
        let mut payload = Vec::with_capacity(PAIR_CHUNK_BYTES + 64);
        for (local_idx, task) in tasks.into_iter().enumerate() {
            if faults.kill_before_task == Some(local_idx as u32) {
                process::die_by_signal();
            }
            let spill = run_one_task(
                task,
                engine,
                nparts,
                strategy,
                combiner,
                partitioner,
                key_codec,
                &mut worker_state,
            );
            payload.clear();
            spill.split_id.encode_wire(&mut payload);
            u8::from(spill.scattered).encode_wire(&mut payload);
            (spill.runs.len() as u32).encode_wire(&mut payload);
            spill.records_read.encode_wire(&mut payload);
            spill.work.bytes_scanned.encode_wire(&mut payload);
            spill.work.cpu_ops.encode_wire(&mut payload);
            spill.pairs.encode_wire(&mut payload);
            spill.bytes.encode_wire(&mut payload);
            writer.write_frame(tag::TASK_BEGIN, &payload)?;
            for run in &spill.runs {
                payload.clear();
                (run.len() as u64).encode_wire(&mut payload);
                writer.write_frame(tag::RUN_BEGIN, &payload)?;
                // Stream the run in bounded chunks: [count][encoded
                // pairs…], cut when the buffer passes the chunk target.
                let mut count = 0u32;
                payload.clear();
                payload.extend_from_slice(&[0; 4]);
                for (k, v) in run {
                    (codec.encode)(k, v, &mut payload);
                    count += 1;
                    if payload.len() >= PAIR_CHUNK_BYTES {
                        payload[..4].copy_from_slice(&count.to_le_bytes());
                        writer.write_frame(tag::PAIRS, &payload)?;
                        count = 0;
                        payload.clear();
                        payload.extend_from_slice(&[0; 4]);
                    }
                }
                if count > 0 {
                    payload[..4].copy_from_slice(&count.to_le_bytes());
                    writer.write_frame(tag::PAIRS, &payload)?;
                }
            }
            // Ship this task's state-journal ops *before* its TASK_END:
            // the coordinator replays exactly the ops of committed
            // tasks, so a task cut mid-stream loses its state mutations
            // along with its pairs — and its re-execution regenerates
            // both.
            if let Some(store) = state {
                for op in store.drain_journal() {
                    payload.clear();
                    match op {
                        StateOp::Save(split, bytes) => {
                            split.encode_wire(&mut payload);
                            bytes.encode_wire(&mut payload);
                            writer.write_frame(tag::STATE_SAVE, &payload)?;
                        }
                        StateOp::Take(split) => {
                            split.encode_wire(&mut payload);
                            writer.write_frame(tag::STATE_TAKE, &payload)?;
                        }
                    }
                }
                store.begin_journal();
            }
            writer.write_frame(tag::TASK_END, &[])?;
            // Push the commit point onto the pipe: a task the child has
            // finished must not be lost to a later crash just because
            // its frames sat in the BufWriter.
            writer.flush()?;
        }
        payload.clear();
        ntasks.encode_wire(&mut payload);
        writer.write_frame(tag::WORKER_END, &payload)?;
        writer.flush()
    }

    /// One committed (TASK_END-confirmed) task off a worker's stream.
    struct CompletedTask<K, V> {
        spill: TaskSpill<K, V>,
        /// The task's state-journal ops, in execution order.
        state_ops: Vec<StateOp>,
        /// Sum of `WireSize::wire_bytes` over the task's decoded pairs —
        /// the measured counterpart of its share of `shuffle_bytes`.
        pair_bytes: u64,
        state_bytes: u64,
    }

    /// What the coordinator gathered from one worker's stream. Partial
    /// tasks (no `TASK_END` yet when the stream failed) never appear
    /// here — that discard is the recovery layer's correctness
    /// cornerstone.
    struct Harvest<K, V> {
        completed: Vec<CompletedTask<K, V>>,
        /// Physical bytes read, frame headers and CRC trailers included.
        frame_bytes: u64,
        frames: u64,
    }

    impl<K, V> Harvest<K, V> {
        fn empty() -> Self {
            Self {
                completed: Vec::new(),
                frame_bytes: 0,
                frames: 0,
            }
        }
    }

    /// A task being assembled: its spill, how many runs are still due,
    /// and its not-yet-committed state ops and byte counts.
    struct PendingTask<K, V> {
        spill: TaskSpill<K, V>,
        nruns: u32,
        state_ops: Vec<StateOp>,
        pair_bytes: u64,
        state_bytes: u64,
    }

    /// Drains one worker's pipe to EOF, decoding frames into committed
    /// tasks. Always returns the tasks committed before any failure —
    /// the coordinator keeps those and re-executes only the rest.
    /// Dropping the reader (and with it the pipe end) on an error is
    /// what un-blocks a worker still writing.
    fn read_worker_stream<R: Read, K, V>(
        read_end: R,
        codec: PairCodec<K, V>,
        deadline_ms: u64,
    ) -> (Harvest<K, V>, Result<(), EngineError>)
    where
        K: WireSize,
        V: WireSize,
    {
        let mut reader = FrameReader::new(read_end);
        let mut harvest = Harvest::empty();
        let status = drain_stream(&mut reader, codec, deadline_ms, &mut harvest);
        harvest.frame_bytes = reader.bytes;
        harvest.frames = reader.frames;
        (harvest, status)
    }

    fn drain_stream<R: Read, K, V>(
        reader: &mut FrameReader<R>,
        codec: PairCodec<K, V>,
        deadline_ms: u64,
        harvest: &mut Harvest<K, V>,
    ) -> Result<(), EngineError>
    where
        K: WireSize,
        V: WireSize,
    {
        let mut pending: Option<PendingTask<K, V>> = None;
        let mut ended = false;
        loop {
            let frame = reader.read_frame().map_err(|e| match e {
                // The deadline reader reports an expired idle deadline
                // as TimedOut; surface it as the typed timeout.
                EngineError::Io(io) if io.kind() == std::io::ErrorKind::TimedOut => {
                    EngineError::WorkerTimeout {
                        worker: 0,
                        deadline_ms,
                    }
                }
                other => other,
            })?;
            let Some((frame_tag, mut payload)) = frame else {
                break;
            };
            if ended {
                return Err(EngineError::Protocol("frame after WORKER_END"));
            }
            match frame_tag {
                tag::TASK_BEGIN => {
                    if pending.is_some() {
                        return Err(EngineError::Protocol("TASK_BEGIN inside a task"));
                    }
                    let split_id = u32::decode_wire(&mut payload)?;
                    let scattered = u8::decode_wire(&mut payload)? != 0;
                    let nruns = u32::decode_wire(&mut payload)?;
                    let records_read = u64::decode_wire(&mut payload)?;
                    let bytes_scanned = u64::decode_wire(&mut payload)?;
                    let cpu_ops = f64::decode_wire(&mut payload)?;
                    let pairs = u64::decode_wire(&mut payload)?;
                    let bytes = u64::decode_wire(&mut payload)?;
                    pending = Some(PendingTask {
                        spill: TaskSpill {
                            split_id,
                            runs: Vec::with_capacity(nruns as usize),
                            scattered,
                            work: crate::cost::TaskWork {
                                bytes_scanned,
                                cpu_ops,
                            },
                            records_read,
                            pairs,
                            bytes,
                        },
                        nruns,
                        state_ops: Vec::new(),
                        pair_bytes: 0,
                        state_bytes: 0,
                    });
                }
                tag::RUN_BEGIN => {
                    let Some(p) = pending.as_mut() else {
                        return Err(EngineError::Protocol("RUN_BEGIN outside a task"));
                    };
                    if p.spill.runs.len() as u32 >= p.nruns {
                        return Err(EngineError::Protocol("more runs than declared"));
                    }
                    let npairs = u64::decode_wire(&mut payload)?;
                    p.spill
                        .runs
                        .push(Vec::with_capacity(npairs.min(1 << 20) as usize));
                }
                tag::PAIRS => {
                    let Some(p) = pending.as_mut() else {
                        return Err(EngineError::Protocol("PAIRS outside a task"));
                    };
                    let Some(run) = p.spill.runs.last_mut() else {
                        return Err(EngineError::Protocol("PAIRS before RUN_BEGIN"));
                    };
                    let count = u32::decode_wire(&mut payload)?;
                    for _ in 0..count {
                        let (k, v) = (codec.decode)(&mut payload)?;
                        // Measured bytes-on-wire: the paper's §5 sizes of
                        // the pairs that really crossed the pipe. Counted
                        // per task and added only at commit, so a retried
                        // task's pairs count exactly once.
                        p.pair_bytes += k.wire_bytes() + v.wire_bytes();
                        run.push((k, v));
                    }
                    if !payload.is_empty() {
                        return Err(EngineError::Protocol("trailing bytes in PAIRS"));
                    }
                }
                tag::STATE_SAVE => {
                    // State ops ride inside their task so replay can be
                    // limited to committed TASK_ENDs.
                    let Some(p) = pending.as_mut() else {
                        return Err(EngineError::Protocol("STATE_SAVE outside a task"));
                    };
                    let split = u32::decode_wire(&mut payload)?;
                    let bytes = Vec::<u8>::decode_wire(&mut payload)?;
                    p.state_bytes += bytes.len() as u64;
                    p.state_ops.push(StateOp::Save(split, bytes));
                }
                tag::STATE_TAKE => {
                    let Some(p) = pending.as_mut() else {
                        return Err(EngineError::Protocol("STATE_TAKE outside a task"));
                    };
                    let split = u32::decode_wire(&mut payload)?;
                    p.state_ops.push(StateOp::Take(split));
                }
                tag::TASK_END => {
                    let Some(p) = pending.take() else {
                        return Err(EngineError::Protocol("TASK_END outside a task"));
                    };
                    if p.spill.runs.len() as u32 != p.nruns {
                        return Err(EngineError::Protocol("fewer runs than declared"));
                    }
                    harvest.completed.push(CompletedTask {
                        spill: p.spill,
                        state_ops: p.state_ops,
                        pair_bytes: p.pair_bytes,
                        state_bytes: p.state_bytes,
                    });
                }
                tag::WORKER_END => {
                    if pending.is_some() {
                        return Err(EngineError::Protocol("WORKER_END inside a task"));
                    }
                    let tasks_done = u32::decode_wire(&mut payload)?;
                    if tasks_done as usize != harvest.completed.len() {
                        return Err(EngineError::Protocol("task count mismatch"));
                    }
                    ended = true;
                }
                _ => return Err(EngineError::Protocol("unknown frame tag")),
            }
        }
        if !ended {
            // Clean EOF at a frame boundary, but the worker never said
            // goodbye: its stream is incomplete all the same.
            return Err(EngineError::TruncatedFrame { worker: 0 });
        }
        Ok(())
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::transport::WriterFaults;

        fn test_codec() -> PairCodec<u32, u64> {
            PairCodec {
                encode: |k, v, out| {
                    k.encode_wire(out);
                    v.encode_wire(out);
                },
                decode: |input| Ok((u32::decode_wire(input)?, u64::decode_wire(input)?)),
            }
        }

        /// A writer producing a synthetic worker stream for the decoder
        /// tests below (no processes involved).
        fn stream() -> FrameWriter<Vec<u8>> {
            FrameWriter::new(Vec::new())
        }

        fn task_begin(w: &mut FrameWriter<Vec<u8>>, split: u32, nruns: u32) {
            let mut p = Vec::new();
            split.encode_wire(&mut p);
            0u8.encode_wire(&mut p);
            nruns.encode_wire(&mut p);
            5u64.encode_wire(&mut p); // records_read
            40u64.encode_wire(&mut p); // bytes_scanned
            0f64.encode_wire(&mut p); // cpu_ops
            1u64.encode_wire(&mut p); // pairs
            12u64.encode_wire(&mut p); // bytes
            w.write_frame(tag::TASK_BEGIN, &p).unwrap();
        }

        fn run_with_one_pair(w: &mut FrameWriter<Vec<u8>>, k: u32, v: u64) {
            let mut p = Vec::new();
            1u64.encode_wire(&mut p);
            w.write_frame(tag::RUN_BEGIN, &p).unwrap();
            p.clear();
            p.extend_from_slice(&1u32.to_le_bytes());
            k.encode_wire(&mut p);
            v.encode_wire(&mut p);
            w.write_frame(tag::PAIRS, &p).unwrap();
        }

        fn worker_end(w: &mut FrameWriter<Vec<u8>>, ntasks: u32) {
            let mut p = Vec::new();
            ntasks.encode_wire(&mut p);
            w.write_frame(tag::WORKER_END, &p).unwrap();
        }

        fn decode(bytes: &[u8]) -> (Harvest<u32, u64>, Result<(), EngineError>) {
            read_worker_stream(bytes, test_codec(), 0)
        }

        #[test]
        fn zero_length_pairs_payload_is_a_typed_error() {
            let mut w = stream();
            task_begin(&mut w, 0, 1);
            let mut p = Vec::new();
            1u64.encode_wire(&mut p);
            w.write_frame(tag::RUN_BEGIN, &p).unwrap();
            // A PAIRS frame with an empty payload: even its count prefix
            // is missing. Must be a typed protocol error, not UB.
            w.write_frame(tag::PAIRS, &[]).unwrap();
            let (h, res) = decode(&w.into_inner());
            assert!(h.completed.is_empty());
            assert!(matches!(res, Err(EngineError::Protocol(_))), "{res:?}");
        }

        #[test]
        fn state_save_for_an_unknown_split_commits_deterministically() {
            // A STATE_SAVE for a split the worker was never assigned is
            // accepted: the state store is keyed by split id and the op
            // rides inside a committed task. Deterministic success, by
            // design.
            let mut w = stream();
            task_begin(&mut w, 0, 1);
            run_with_one_pair(&mut w, 7, 1);
            let mut p = Vec::new();
            99u32.encode_wire(&mut p);
            vec![1u8, 2, 3].encode_wire(&mut p);
            w.write_frame(tag::STATE_SAVE, &p).unwrap();
            w.write_frame(tag::TASK_END, &[]).unwrap();
            worker_end(&mut w, 1);
            let (h, res) = decode(&w.into_inner());
            assert!(res.is_ok(), "{res:?}");
            assert_eq!(h.completed.len(), 1);
            assert_eq!(
                h.completed[0].state_ops,
                vec![StateOp::Save(99, vec![1, 2, 3])]
            );
            assert_eq!(h.completed[0].state_bytes, 3);
        }

        #[test]
        fn state_frames_outside_a_task_are_protocol_errors() {
            let mut w = stream();
            let mut p = Vec::new();
            1u32.encode_wire(&mut p);
            vec![9u8].encode_wire(&mut p);
            w.write_frame(tag::STATE_SAVE, &p).unwrap();
            let (_, res) = decode(&w.into_inner());
            assert!(matches!(res, Err(EngineError::Protocol(_))));
        }

        #[test]
        fn partial_task_is_discarded_but_committed_tasks_survive() {
            let mut w = stream();
            task_begin(&mut w, 0, 1);
            run_with_one_pair(&mut w, 3, 30);
            w.write_frame(tag::TASK_END, &[]).unwrap();
            // Second task begins but never ends: the stream dies here.
            task_begin(&mut w, 1, 1);
            run_with_one_pair(&mut w, 4, 40);
            let (h, res) = decode(&w.into_inner());
            assert!(matches!(res, Err(EngineError::TruncatedFrame { .. })));
            assert_eq!(h.completed.len(), 1, "first task committed");
            assert_eq!(h.completed[0].spill.split_id, 0);
            // Only the committed task's pairs are counted.
            assert_eq!(h.completed[0].pair_bytes, 12);
        }

        #[test]
        fn worker_end_task_count_is_checked() {
            let mut w = stream();
            task_begin(&mut w, 0, 1);
            run_with_one_pair(&mut w, 1, 1);
            w.write_frame(tag::TASK_END, &[]).unwrap();
            worker_end(&mut w, 2); // lies: only 1 task committed
            let (_, res) = decode(&w.into_inner());
            assert!(matches!(
                res,
                Err(EngineError::Protocol("task count mismatch"))
            ));
        }

        #[test]
        fn injected_truncation_discards_the_cut_task() {
            // Same stream, but the writer is armed to cut after 5 whole
            // frames — task 0's four frames plus task 1's TASK_BEGIN, so
            // the stream dies mid second task: decoding commits task 0
            // and reports a truncated stream.
            let mut w = FrameWriter::with_faults(
                Vec::new(),
                WriterFaults {
                    truncate_after: Some(5),
                    corrupt_frame: None,
                },
            );
            task_begin(&mut w, 0, 1);
            run_with_one_pair(&mut w, 3, 30);
            w.write_frame(tag::TASK_END, &[]).unwrap();
            task_begin(&mut w, 1, 1);
            run_with_one_pair(&mut w, 4, 40);
            w.write_frame(tag::TASK_END, &[]).unwrap();
            worker_end(&mut w, 2);
            let (h, res) = decode(&w.into_inner());
            assert!(matches!(res, Err(EngineError::TruncatedFrame { .. })));
            assert_eq!(h.completed.len(), 1);
        }
    }
}
