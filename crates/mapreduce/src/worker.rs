//! The multi-process executor: forked map workers, a coordinating parent.
//!
//! `execute_multiprocess` runs the map phase of a job in child
//! processes and everything downstream (shuffle, reduce, Close hook,
//! stitching) in the coordinator, reusing the pipelined engine's own
//! `crate::engine::run_one_task` and
//! `crate::engine::shuffle_reduce_finish` — the two modes differ *only*
//! in how spills travel, which is what makes them bit-identical by
//! construction.
//!
//! ```text
//!  coordinator                               worker w (forked child)
//!  ───────────                               ───────────────────────
//!  split tasks round-robin ──fork──────────▶ runs its tasks via
//!  one pipe per worker                       run_one_task (combine,
//!  reader thread per pipe ◀──framed spill──  partition, pre-sort),
//!  decode pairs, count bytes                 streams TASK/RUN/PAIRS
//!  reap children (waitpid)                   frames + state journal,
//!  replay state journal                      then WORKER_END, _exit(0)
//!  shuffle_reduce_finish (shared code)
//!  ```
//!
//! Workers are **forked**, not spawned: map closures capture datasets and
//! `Arc` state that cannot cross an `exec`, but fork's copy-on-write
//! snapshot carries them for free — the same trick gives every round of a
//! multi-round algorithm (H-WTopk) its predecessor's replayed
//! [`crate::StateStore`] contents, playing the role of Hadoop's local
//! HDFS state files, and carries broadcast payloads like the paper's
//! Job-Configuration channel. The transport is the [`crate::transport`]
//! frame protocol over one Unix pipe per worker; the coordinator counts
//! [`crate::metrics::WireTraffic`] from the frames it actually decodes.
//!
//! Failure containment: a child that panics exits with
//! `transport::process::EXIT_PANIC`; one whose pipe dies exits with
//! `transport::process::EXIT_PIPE`; the coordinator reaps every child
//! unconditionally after its reader threads finish (a reader that errors
//! drops its pipe end, so a still-writing child gets `EPIPE` and exits
//! rather than blocking forever), then surfaces the most meaningful
//! [`crate::EngineError`]: a killed/aborted worker wins over the
//! truncated frame its death also caused.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set (only) inside a forked map-worker process, before any task runs.
static IN_WORKER: AtomicBool = AtomicBool::new(false);

/// Whether the calling code is executing inside a forked map-worker
/// process of the multi-process engine. `false` in every in-process
/// engine mode and in the coordinator.
pub fn in_map_worker() -> bool {
    IN_WORKER.load(Ordering::Relaxed)
}

#[cfg(unix)]
pub(crate) use unix::execute_multiprocess;

#[cfg(not(unix))]
pub(crate) fn execute_multiprocess<K, V, R>(
    _cluster: &crate::cost::ClusterConfig,
    _spec: crate::job::JobSpec<K, V, R>,
) -> Result<crate::job::JobOutput<R>, crate::transport::EngineError> {
    Err(crate::transport::EngineError::Unsupported)
}

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::io::BufWriter;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;

    use crate::cost::ClusterConfig;
    use crate::engine::{
        dense_combine_domain, run_one_task, select_strategy, shuffle_reduce_finish, MapWorker,
        TaskSpill,
    };
    use crate::job::{JobOutput, JobSpec, MapTask, PairCodec, PartitionFn};
    use crate::metrics::{ReduceStrategy, WireTraffic};
    use crate::state::{StateOp, StateStore};
    use crate::transport::process::{self, Exit};
    use crate::transport::{tag, EngineError, FrameReader, FrameWriter, PAIR_CHUNK_BYTES};
    use crate::wire::{WireCodec, WireSize};

    /// Executes one round with forked map workers. See the module docs
    /// for the lifecycle; the reduce side runs in the coordinator via the
    /// shared [`shuffle_reduce_finish`].
    pub(crate) fn execute_multiprocess<K, V, R>(
        cluster: &ClusterConfig,
        spec: JobSpec<K, V, R>,
    ) -> Result<JobOutput<R>, EngineError>
    where
        K: Ord + std::hash::Hash + Clone + Send + WireSize + 'static,
        V: Send + WireSize + 'static,
        R: Send,
    {
        let JobSpec {
            map_tasks,
            combiner,
            partitioner,
            reduce,
            broadcast_bytes,
            finish,
            engine,
            key_codec,
            pair_codec,
            state,
            ..
        } = spec;
        assert!(engine.num_reducers >= 1, "need at least one reducer");
        let Some(codec) = pair_codec else {
            return Err(EngineError::MissingWireCodec);
        };
        let nparts = engine.num_reducers as usize;
        let dense_domain = dense_combine_domain(
            key_codec.is_some(),
            engine.key_domain_hint,
            combiner.is_some(),
        );
        let strategy = select_strategy(key_codec.is_some(), engine.key_domain_hint, nparts);

        // A job with no tasks has nothing to fork for; run the (empty)
        // downstream phases directly so the Close hook still fires.
        if map_tasks.is_empty() {
            return Ok(shuffle_reduce_finish(
                cluster,
                &engine,
                Vec::new(),
                &partitioner,
                reduce,
                finish,
                broadcast_bytes,
                strategy,
                key_codec,
                0.0,
            ));
        }

        // ---- Fork the workers, tasks assigned round-robin. Even a
        // single worker forks: the point of this mode is that the bytes
        // genuinely cross a process boundary. ----
        let map_start = std::time::Instant::now();
        let nworkers = engine.map_workers(map_tasks.len());
        let ntasks = map_tasks.len();
        let mut by_worker: Vec<Vec<MapTask<K, V>>> = (0..nworkers).map(|_| Vec::new()).collect();
        for (i, task) in map_tasks.into_iter().enumerate() {
            by_worker[i % nworkers].push(task);
        }

        let mut children: Vec<(i32, Option<File>)> = Vec::with_capacity(nworkers);
        for tasks in by_worker.iter_mut() {
            let (read_end, write_end) = process::pipe_pair()?;
            match process::fork_worker()? {
                None => {
                    // Child: the parent's read end (and any earlier
                    // workers' read ends we inherited) just leak until
                    // _exit; only our write end matters.
                    drop(read_end);
                    super::IN_WORKER.store(true, Ordering::Relaxed);
                    if let Some(store) = &state {
                        store.begin_journal();
                    }
                    let my_tasks = std::mem::take(tasks);
                    let status = catch_unwind(AssertUnwindSafe(|| {
                        child_main(
                            my_tasks,
                            write_end,
                            &engine,
                            nparts,
                            strategy,
                            &combiner,
                            &partitioner,
                            key_codec,
                            codec,
                            state.as_deref(),
                            dense_domain,
                        )
                    }));
                    process::exit_now(match status {
                        Ok(Ok(())) => 0,
                        // Write failure: the coordinator hung up (or the
                        // pipe broke) — nothing left to report to.
                        Ok(Err(_)) => process::EXIT_PIPE,
                        Err(_) => process::EXIT_PANIC,
                    });
                }
                Some(pid) => {
                    // Parent: drop our copy of the write end immediately,
                    // or the reader would never see EOF.
                    drop(write_end);
                    children.push((pid, Some(read_end)));
                }
            }
        }

        // ---- Read every worker's stream concurrently (a pipe holds only
        // ~64 KiB; workers block when it fills, so the coordinator must
        // drain all pipes at once). ----
        let mut harvests: Vec<Result<Harvest<K, V>, EngineError>> = Vec::with_capacity(nworkers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = children
                .iter_mut()
                .map(|(_, read_end)| {
                    let read_end = read_end.take().expect("read end present");
                    scope.spawn(move || read_worker_stream(read_end, codec))
                })
                .collect();
            for h in handles {
                harvests.push(h.join().expect("reader threads do not panic"));
            }
        });

        // ---- Reap every child unconditionally (readers have finished,
        // so their dropped pipe ends guarantee no child blocks on a full
        // pipe forever). ----
        let mut exits = Vec::with_capacity(nworkers);
        for (pid, _) in &children {
            exits.push(process::wait_for(*pid)?);
        }

        // ---- Error precedence: a worker that died abnormally explains
        // everything else (its death also truncated its stream), so it
        // wins; then stream-level errors; then EXIT_PIPE, which is
        // usually the *consequence* of the coordinator hanging up on an
        // earlier error but stands alone if nothing else went wrong. ----
        let mut broken: Option<EngineError> = None;
        for (worker, exit) in exits.iter().enumerate() {
            match *exit {
                Exit::Signal(signal) => {
                    return Err(EngineError::WorkerDied {
                        worker,
                        exit_code: None,
                        signal: Some(signal),
                    })
                }
                Exit::Code(0) => {}
                Exit::Code(code) if code == process::EXIT_PIPE => {
                    broken.get_or_insert(EngineError::WorkerDied {
                        worker,
                        exit_code: Some(code),
                        signal: None,
                    });
                }
                Exit::Code(code) => {
                    return Err(EngineError::WorkerDied {
                        worker,
                        exit_code: Some(code),
                        signal: None,
                    })
                }
            }
        }
        let mut collected: Vec<Harvest<K, V>> = Vec::with_capacity(nworkers);
        for (worker, harvest) in harvests.into_iter().enumerate() {
            match harvest {
                Ok(h) => collected.push(h),
                Err(EngineError::TruncatedFrame { .. }) => {
                    return Err(EngineError::TruncatedFrame { worker })
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(e) = broken {
            return Err(e);
        }

        // ---- Merge: spills to split-id order, state journals replayed
        // in worker-index order (each split's state belongs to exactly
        // one worker, so cross-worker order is immaterial), traffic
        // summed. ----
        let mut wire = WireTraffic {
            workers: nworkers as u32,
            comm_rounds: u32::from(broadcast_bytes > 0),
            ..Default::default()
        };
        let mut per_task: Vec<TaskSpill<K, V>> = Vec::with_capacity(ntasks);
        let mut tasks_seen = 0usize;
        for h in collected {
            wire.pair_bytes += h.pair_bytes;
            wire.frame_bytes += h.frame_bytes;
            wire.frames += h.frames;
            wire.state_bytes += h.state_bytes;
            tasks_seen += h.tasks_done as usize;
            per_task.extend(h.spills);
            if let Some(store) = &state {
                for op in h.state_ops {
                    store.apply(op);
                }
            }
        }
        if tasks_seen != ntasks || per_task.len() != ntasks {
            return Err(EngineError::Protocol("task count mismatch"));
        }
        per_task.sort_by_key(|t| t.split_id);
        let wall_map_s = map_start.elapsed().as_secs_f64();

        let mut out = shuffle_reduce_finish(
            cluster,
            &engine,
            per_task,
            &partitioner,
            reduce,
            finish,
            broadcast_bytes,
            strategy,
            key_codec,
            wall_map_s,
        );
        out.metrics.wire = wire;
        Ok(out)
    }

    /// The forked child's whole life: run the assigned tasks through the
    /// shared map-task unit, stream each spill as frames, ship the state
    /// journal, close with `WORKER_END`, flush. Any `Err` means the pipe
    /// is gone and the child exits `EXIT_PIPE`.
    #[allow(clippy::too_many_arguments)]
    fn child_main<K, V>(
        tasks: Vec<MapTask<K, V>>,
        write_end: File,
        engine: &crate::engine::EngineConfig,
        nparts: usize,
        strategy: ReduceStrategy,
        combiner: &Option<crate::job::CombineFn<K, V>>,
        partitioner: &PartitionFn<K>,
        key_codec: Option<fn(&K) -> u64>,
        codec: PairCodec<K, V>,
        state: Option<&StateStore>,
        dense_domain: Option<usize>,
    ) -> std::io::Result<()>
    where
        K: Ord + Clone + Send + WireSize + 'static,
        V: Send + WireSize + 'static,
    {
        let mut writer = FrameWriter::new(BufWriter::with_capacity(PAIR_CHUNK_BYTES, write_end));
        let mut worker_state = MapWorker::new(key_codec, dense_domain);
        let ntasks = tasks.len() as u32;
        let mut payload = Vec::with_capacity(PAIR_CHUNK_BYTES + 64);
        for task in tasks {
            let spill = run_one_task(
                task,
                engine,
                nparts,
                strategy,
                combiner,
                partitioner,
                key_codec,
                &mut worker_state,
            );
            payload.clear();
            spill.split_id.encode_wire(&mut payload);
            u8::from(spill.scattered).encode_wire(&mut payload);
            (spill.runs.len() as u32).encode_wire(&mut payload);
            spill.records_read.encode_wire(&mut payload);
            spill.work.bytes_scanned.encode_wire(&mut payload);
            spill.work.cpu_ops.encode_wire(&mut payload);
            spill.pairs.encode_wire(&mut payload);
            spill.bytes.encode_wire(&mut payload);
            writer.write_frame(tag::TASK_BEGIN, &payload)?;
            for run in &spill.runs {
                payload.clear();
                (run.len() as u64).encode_wire(&mut payload);
                writer.write_frame(tag::RUN_BEGIN, &payload)?;
                // Stream the run in bounded chunks: [count][encoded
                // pairs…], cut when the buffer passes the chunk target.
                let mut count = 0u32;
                payload.clear();
                payload.extend_from_slice(&[0; 4]);
                for (k, v) in run {
                    (codec.encode)(k, v, &mut payload);
                    count += 1;
                    if payload.len() >= PAIR_CHUNK_BYTES {
                        payload[..4].copy_from_slice(&count.to_le_bytes());
                        writer.write_frame(tag::PAIRS, &payload)?;
                        count = 0;
                        payload.clear();
                        payload.extend_from_slice(&[0; 4]);
                    }
                }
                if count > 0 {
                    payload[..4].copy_from_slice(&count.to_le_bytes());
                    writer.write_frame(tag::PAIRS, &payload)?;
                }
            }
            writer.write_frame(tag::TASK_END, &[])?;
        }
        if let Some(store) = state {
            for op in store.drain_journal() {
                payload.clear();
                match op {
                    StateOp::Save(split, bytes) => {
                        split.encode_wire(&mut payload);
                        bytes.encode_wire(&mut payload);
                        writer.write_frame(tag::STATE_SAVE, &payload)?;
                    }
                    StateOp::Take(split) => {
                        split.encode_wire(&mut payload);
                        writer.write_frame(tag::STATE_TAKE, &payload)?;
                    }
                }
            }
        }
        payload.clear();
        ntasks.encode_wire(&mut payload);
        writer.write_frame(tag::WORKER_END, &payload)?;
        writer.flush()
    }

    /// What the coordinator gathered from one worker's stream.
    struct Harvest<K, V> {
        spills: Vec<TaskSpill<K, V>>,
        state_ops: Vec<StateOp>,
        /// Sum of `WireSize::wire_bytes` over the pairs actually decoded
        /// off the pipe — the measured counterpart of `shuffle_bytes`.
        pair_bytes: u64,
        /// Physical bytes read, frame headers included.
        frame_bytes: u64,
        frames: u64,
        state_bytes: u64,
        tasks_done: u32,
    }

    /// Drains one worker's pipe to EOF, decoding frames into spills and
    /// state ops. Returns an error on any malformed or truncated frame;
    /// dropping the reader (and with it the pipe end) on that early
    /// return is what un-blocks a worker still writing.
    fn read_worker_stream<K, V>(
        read_end: File,
        codec: PairCodec<K, V>,
    ) -> Result<Harvest<K, V>, EngineError>
    where
        K: WireSize,
        V: WireSize,
    {
        let mut reader = FrameReader::new(read_end);
        let mut harvest = Harvest {
            spills: Vec::new(),
            state_ops: Vec::new(),
            pair_bytes: 0,
            frame_bytes: 0,
            frames: 0,
            state_bytes: 0,
            tasks_done: 0,
        };
        // The spill currently being assembled: header fields plus how
        // many runs are still due.
        let mut pending: Option<(TaskSpill<K, V>, u32)> = None;
        let mut ended = false;
        while let Some((frame_tag, mut payload)) = reader.read_frame()? {
            if ended {
                return Err(EngineError::Protocol("frame after WORKER_END"));
            }
            match frame_tag {
                tag::TASK_BEGIN => {
                    if pending.is_some() {
                        return Err(EngineError::Protocol("TASK_BEGIN inside a task"));
                    }
                    let split_id = u32::decode_wire(&mut payload)?;
                    let scattered = u8::decode_wire(&mut payload)? != 0;
                    let nruns = u32::decode_wire(&mut payload)?;
                    let records_read = u64::decode_wire(&mut payload)?;
                    let bytes_scanned = u64::decode_wire(&mut payload)?;
                    let cpu_ops = f64::decode_wire(&mut payload)?;
                    let pairs = u64::decode_wire(&mut payload)?;
                    let bytes = u64::decode_wire(&mut payload)?;
                    pending = Some((
                        TaskSpill {
                            split_id,
                            runs: Vec::with_capacity(nruns as usize),
                            scattered,
                            work: crate::cost::TaskWork {
                                bytes_scanned,
                                cpu_ops,
                            },
                            records_read,
                            pairs,
                            bytes,
                        },
                        nruns,
                    ));
                }
                tag::RUN_BEGIN => {
                    let Some((spill, nruns)) = pending.as_mut() else {
                        return Err(EngineError::Protocol("RUN_BEGIN outside a task"));
                    };
                    if spill.runs.len() as u32 >= *nruns {
                        return Err(EngineError::Protocol("more runs than declared"));
                    }
                    let npairs = u64::decode_wire(&mut payload)?;
                    spill
                        .runs
                        .push(Vec::with_capacity(npairs.min(1 << 20) as usize));
                }
                tag::PAIRS => {
                    let Some((spill, _)) = pending.as_mut() else {
                        return Err(EngineError::Protocol("PAIRS outside a task"));
                    };
                    let Some(run) = spill.runs.last_mut() else {
                        return Err(EngineError::Protocol("PAIRS before RUN_BEGIN"));
                    };
                    let count = u32::decode_wire(&mut payload)?;
                    for _ in 0..count {
                        let (k, v) = (codec.decode)(&mut payload)?;
                        // Measured bytes-on-wire: the paper's §5 sizes of
                        // the pairs that really crossed the pipe.
                        harvest.pair_bytes += k.wire_bytes() + v.wire_bytes();
                        run.push((k, v));
                    }
                    if !payload.is_empty() {
                        return Err(EngineError::Protocol("trailing bytes in PAIRS"));
                    }
                }
                tag::TASK_END => {
                    let Some((spill, nruns)) = pending.take() else {
                        return Err(EngineError::Protocol("TASK_END outside a task"));
                    };
                    if spill.runs.len() as u32 != nruns {
                        return Err(EngineError::Protocol("fewer runs than declared"));
                    }
                    harvest.spills.push(spill);
                }
                tag::STATE_SAVE => {
                    let split = u32::decode_wire(&mut payload)?;
                    let bytes = Vec::<u8>::decode_wire(&mut payload)?;
                    harvest.state_bytes += bytes.len() as u64;
                    harvest.state_ops.push(StateOp::Save(split, bytes));
                }
                tag::STATE_TAKE => {
                    let split = u32::decode_wire(&mut payload)?;
                    harvest.state_ops.push(StateOp::Take(split));
                }
                tag::WORKER_END => {
                    if pending.is_some() {
                        return Err(EngineError::Protocol("WORKER_END inside a task"));
                    }
                    harvest.tasks_done = u32::decode_wire(&mut payload)?;
                    ended = true;
                }
                _ => return Err(EngineError::Protocol("unknown frame tag")),
            }
        }
        if !ended {
            // Clean EOF at a frame boundary, but the worker never said
            // goodbye: its stream is incomplete all the same.
            return Err(EngineError::TruncatedFrame { worker: 0 });
        }
        harvest.frame_bytes = reader.bytes;
        harvest.frames = reader.frames;
        Ok(harvest)
    }
}
