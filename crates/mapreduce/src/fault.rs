//! Deterministic fault injection for the multi-process engine.
//!
//! A [`FaultPlan`] rides on [`crate::EngineConfig`] and arms exactly one
//! run of `EngineMode::MultiProcess` with reproducible failures: kill
//! worker *w* right before its *t*-th local task, truncate worker *w*'s
//! stream after its *n*-th frame, corrupt one frame's checksum, or stall
//! a worker long enough to trip the coordinator's read deadline. Every
//! fault fires on a worker's **first** spawn only — a respawned worker
//! runs clean — which is what makes recovery testable: the chaos suite
//! (`tests/engine_faults.rs`) injects a fault, lets the coordinator
//! re-execute the lost tasks, and asserts the recovered output is
//! bit-identical to a fault-free run.
//!
//! The plan is plain `Copy` data (worker indices, frame ordinals,
//! millisecond counts), so [`crate::EngineConfig`] keeps its
//! `Copy + Eq` contract and the plan crosses a `fork` for free.

use crate::transport::WriterFaults;

/// Declarative fault schedule for one multi-process run. `default()` is
/// the empty plan (no faults). Worker indices refer to the coordinator's
/// spawn order (tasks are assigned round-robin, so worker `w` owns
/// global tasks `w, w + nworkers, …`); task indices are *local* to the
/// worker's assignment; frame ordinals count the worker's frames from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Kill worker `.0` with `SIGKILL` immediately before it runs its
    /// local task `.1` — the stand-in for a machine crash mid-job.
    pub kill_before_task: Option<(u32, u32)>,
    /// Cut worker `.0`'s stream after `.1` whole frames: the pipe ends
    /// with a partial header while the worker itself exits cleanly — a
    /// torn connection rather than a dead process.
    pub truncate_after_frame: Option<(u32, u32)>,
    /// Flip a bit in the CRC32C trailer of worker `.0`'s frame `.1`,
    /// modeling silent corruption between encoder and decoder.
    pub corrupt_frame: Option<(u32, u32)>,
    /// Make worker `.0` sleep `.1` milliseconds before its first task —
    /// long enough, and the coordinator's read deadline converts the
    /// silence into [`crate::EngineError::WorkerTimeout`].
    pub stall_ms: Option<(u32, u64)>,
}

impl FaultPlan {
    /// The empty plan (no faults) — identical to `FaultPlan::default()`.
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms a `SIGKILL` of `worker` before its local task `task`.
    pub fn kill_worker_before_task(mut self, worker: u32, task: u32) -> Self {
        self.kill_before_task = Some((worker, task));
        self
    }

    /// Arms a stream truncation of `worker` after `frames` whole frames.
    pub fn truncate_worker_after_frame(mut self, worker: u32, frames: u32) -> Self {
        self.truncate_after_frame = Some((worker, frames));
        self
    }

    /// Arms a checksum corruption of `worker`'s frame `frame`.
    pub fn corrupt_worker_frame(mut self, worker: u32, frame: u32) -> Self {
        self.corrupt_frame = Some((worker, frame));
        self
    }

    /// Arms a `millis`-long stall of `worker` before its first task.
    pub fn stall_worker(mut self, worker: u32, millis: u64) -> Self {
        self.stall_ms = Some((worker, millis));
        self
    }

    /// Whether the plan is empty.
    pub fn is_none(&self) -> bool {
        *self == Self::default()
    }

    /// Resolves the plan into the concrete faults one spawned child
    /// executes. Faults target first spawns only (`attempt == 0`):
    /// retries must run clean or recovery could never converge.
    pub(crate) fn for_worker(&self, worker: u32, attempt: u32) -> ChildFaults {
        if attempt > 0 {
            return ChildFaults::default();
        }
        let of = |slot: Option<(u32, u32)>| slot.filter(|&(w, _)| w == worker).map(|(_, x)| x);
        ChildFaults {
            kill_before_task: of(self.kill_before_task),
            stall_ms: self
                .stall_ms
                .filter(|&(w, _)| w == worker)
                .map(|(_, ms)| ms),
            writer: WriterFaults {
                truncate_after: of(self.truncate_after_frame).map(u64::from),
                corrupt_frame: of(self.corrupt_frame).map(u64::from),
            },
        }
    }
}

/// The already-resolved faults for one spawned worker process.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ChildFaults {
    pub kill_before_task: Option<u32>,
    pub stall_ms: Option<u64>,
    pub writer: WriterFaults,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_resolves_per_worker_and_first_attempt_only() {
        let plan = FaultPlan::none()
            .kill_worker_before_task(1, 2)
            .truncate_worker_after_frame(0, 5)
            .corrupt_worker_frame(2, 7)
            .stall_worker(1, 400);
        assert!(!plan.is_none());

        let w0 = plan.for_worker(0, 0);
        assert_eq!(w0.kill_before_task, None);
        assert_eq!(w0.writer.truncate_after, Some(5));
        assert_eq!(w0.writer.corrupt_frame, None);
        assert_eq!(w0.stall_ms, None);

        let w1 = plan.for_worker(1, 0);
        assert_eq!(w1.kill_before_task, Some(2));
        assert_eq!(w1.stall_ms, Some(400));
        assert_eq!(w1.writer.truncate_after, None);

        let w2 = plan.for_worker(2, 0);
        assert_eq!(w2.writer.corrupt_frame, Some(7));

        // Respawns run clean.
        let retry = plan.for_worker(1, 1);
        assert_eq!(retry.kill_before_task, None);
        assert_eq!(retry.stall_ms, None);
        assert_eq!(retry.writer, WriterFaults::default());
    }

    #[test]
    fn empty_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
    }
}
