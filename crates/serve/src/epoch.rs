//! The epoch-swap primitive: `Arc`-published snapshots with lock-free
//! steady-state reads.
//!
//! The serving tier needs exactly one concurrency pattern: many reader
//! threads answering queries from an immutable snapshot while a writer
//! occasionally publishes a rebuilt one, with readers that **never
//! block** in the steady state and **never observe a torn snapshot**.
//! The stock tools each miss: `RwLock` makes every batch take a shared
//! lock (and a publisher stalls behind readers); a bare
//! `AtomicPtr<Arc<T>>` has the classic refcount race (a reader loads the
//! pointer, the writer drops the last reference before the reader
//! increments it). The `arc-swap` crate solves this with hazard-pointer
//! style tracking; this vendored-free primitive gets the same serving
//! behavior from a simpler invariant:
//!
//! * [`EpochSwap`] holds the current `Arc<T>` behind a tiny mutex plus a
//!   monotonically increasing **epoch counter**. Publishing locks the
//!   mutex (writers are rare), swaps the `Arc`, bumps the epoch, and
//!   drops the displaced snapshot *outside* the lock.
//! * Each reader thread owns an [`EpochReader`] caching a full `Arc<T>`
//!   clone plus the epoch it was read at. Refreshing is **one `Acquire`
//!   atomic load per batch**: only when the epoch moved does the reader
//!   touch the mutex to re-clone — and its cached `Arc` keeps the old
//!   snapshot alive meanwhile, so there is no refcount race by
//!   construction.
//!
//! Torn reads are impossible because the unit of publication is one
//! `Arc` swap: a reader holds either the whole old snapshot or the whole
//! new one, never parts of each. The swap-under-load tests in
//! `tests/serve_tier.rs` hammer exactly this claim.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A writer-side cell publishing `Arc<T>` snapshots to [`EpochReader`]s.
#[derive(Debug)]
pub struct EpochSwap<T> {
    /// Bumped (with `Release`) after each publication; readers poll this
    /// and only touch `slot` when it moved.
    epoch: AtomicU64,
    /// The current snapshot. Locked briefly by publishers and by readers
    /// refreshing their cache — never on the steady-state read path.
    slot: Mutex<Arc<T>>,
}

impl<T> EpochSwap<T> {
    /// A cell holding `initial` at epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            epoch: AtomicU64::new(0),
            slot: Mutex::new(initial),
        }
    }

    /// The current epoch. Monotone; moves exactly once per [`store`].
    ///
    /// [`store`]: Self::store
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes `next` as the current snapshot and returns the new
    /// epoch. The displaced snapshot is dropped outside the lock, so a
    /// slow `Drop` of the last generation never blocks readers
    /// refreshing their cache.
    pub fn store(&self, next: Arc<T>) -> u64 {
        let old = {
            let mut slot = self.slot.lock();
            let old = std::mem::replace(&mut *slot, next);
            // Bump inside the lock so concurrent publishers order their
            // epoch increments with their slot writes; `Release` pairs
            // with the readers' `Acquire` poll.
            self.epoch.fetch_add(1, Ordering::Release);
            old
        };
        drop(old);
        self.epoch()
    }

    /// Clones the current snapshot together with an epoch observed *at
    /// or before* the clone. The pairing is conservative on purpose: if
    /// a publication lands between the epoch read and the clone, the
    /// caller holds a snapshot *newer* than the recorded epoch and will
    /// simply refresh once more on its next poll — it can never hold a
    /// snapshot older than the epoch it recorded, which is the invariant
    /// [`EpochReader`] relies on to never serve stale generations
    /// forever.
    pub fn load(&self) -> (u64, Arc<T>) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let arc = Arc::clone(&self.slot.lock());
        (epoch, arc)
    }

    /// A reader cache primed with the current snapshot.
    pub fn reader(&self) -> EpochReader<T> {
        let (epoch, cached) = self.load();
        EpochReader { epoch, cached }
    }
}

/// A reader thread's cache of one [`EpochSwap`] snapshot: the `Arc` it
/// last cloned and the epoch it observed doing so. One per thread;
/// [`get`](Self::get) is the per-batch entry point.
#[derive(Debug)]
pub struct EpochReader<T> {
    epoch: u64,
    cached: Arc<T>,
}

impl<T> EpochReader<T> {
    /// The cached snapshot, refreshed first if `swap`'s epoch moved
    /// since the last call. Steady state (no publication) is one
    /// `Acquire` load and no locking; after a publication, one brief
    /// mutex lock re-clones the new snapshot.
    pub fn get(&mut self, swap: &EpochSwap<T>) -> &Arc<T> {
        let now = swap.epoch();
        if now != self.epoch {
            let (epoch, cached) = swap.load();
            self.epoch = epoch;
            self.cached = cached;
        }
        &self.cached
    }

    /// The epoch of the cached snapshot (no refresh).
    pub fn cached_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_bumps_the_epoch_and_readers_refresh() {
        let swap = EpochSwap::new(Arc::new(1u64));
        let mut reader = swap.reader();
        assert_eq!(**reader.get(&swap), 1);
        assert_eq!(swap.epoch(), 0);

        assert_eq!(swap.store(Arc::new(2)), 1);
        assert_eq!(**reader.get(&swap), 2);
        assert_eq!(reader.cached_epoch(), 1);

        assert_eq!(swap.store(Arc::new(3)), 2);
        assert_eq!(swap.store(Arc::new(4)), 3);
        assert_eq!(**reader.get(&swap), 4);
    }

    #[test]
    fn reader_cache_keeps_old_snapshot_alive_until_refresh() {
        let first = Arc::new(vec![1u8, 2, 3]);
        let swap = EpochSwap::new(Arc::clone(&first));
        let mut reader = swap.reader();
        reader.get(&swap);
        swap.store(Arc::new(vec![4, 5, 6]));
        // The cell dropped its reference, but the reader's cache still
        // holds one — the old snapshot is alive until the reader polls.
        assert_eq!(Arc::strong_count(&first), 2);
        assert_eq!(**reader.get(&swap), vec![4, 5, 6]);
        assert_eq!(Arc::strong_count(&first), 1);
    }

    #[test]
    fn concurrent_readers_see_complete_snapshots_only() {
        // Snapshots are (n, n) pairs; a torn read would pair different
        // generations. Readers poll while a writer republishes.
        let swap = Arc::new(EpochSwap::new(Arc::new((0u64, 0u64))));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let swap = Arc::clone(&swap);
                s.spawn(move || {
                    let mut reader = swap.reader();
                    for _ in 0..20_000 {
                        let snap = reader.get(&swap);
                        assert_eq!(snap.0, snap.1, "torn snapshot observed");
                    }
                });
            }
            let swap = Arc::clone(&swap);
            s.spawn(move || {
                for g in 1..=1_000u64 {
                    swap.store(Arc::new((g, g)));
                }
            });
        });
        assert_eq!(swap.epoch(), 1_000);
    }
}
