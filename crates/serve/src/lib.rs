//! # wh-serve — the sharded, lock-free-on-read serving tier
//!
//! The paper builds wavelet histograms *so that* something can serve
//! selectivity estimates from them at query-optimizer traffic rates — a
//! cardinality estimator probes one histogram per predicate per
//! candidate plan. This crate is that tier, grown from `wh-query`'s
//! single compiled histogram into a process-wide serving component:
//!
//! * **Sharded.** Published histograms are sliced into key-range shards
//!   ([`wh_query::ShardedHistogram`]) and addressed by dataset id.
//!   Batched queries are routed by endpoint, fanned out to shards, and
//!   the per-shard partials merged — **bit-identically** to querying the
//!   unsharded [`wh_query::CompiledHistogram`], because shards are
//!   bitwise slices of the compiled arrays, not independent compiles.
//! * **Lock-free on read.** Rebuilt histograms swap in as whole
//!   [`Snapshot`] generations through an epoch-swap primitive
//!   ([`EpochSwap`]): readers poll one atomic per batch and re-clone an
//!   `Arc` only when a generation actually changed, so they never block
//!   on a publisher and never observe a torn generation.
//! * **Fallible.** Every query runs through `wh-query`'s `try_*` path;
//!   malformed traffic comes back as [`ServeError`] values. A serving
//!   thread cannot be panicked by query input.
//! * **Degrades gracefully.** A rebuild pipeline that errors
//!   ([`ServeTier::try_publish`]) or panics mid-publish leaves the last
//!   good [`Snapshot`] serving — reads are never dropped. Consecutive
//!   failures are tracked per dataset and reported as
//!   [`DatasetHealth::Degraded`] / [`DatasetHealth::Quarantined`]
//!   through [`ServeTier::dataset_health`] and
//!   [`ServeTier::degraded_datasets`], without ever gating the read
//!   path.
//!
//! ## Shape of a server
//!
//! ```
//! use wh_serve::ServeTier;
//! use wh_core::WaveletHistogram;
//! use wh_query::CompiledHistogram;
//! use wh_wavelet::Domain;
//!
//! // Build + compile (normally: the MapReduce build path).
//! let domain = Domain::new(3).unwrap();
//! let hist = WaveletHistogram::new(domain, [(0, 16.0 / 8f64.sqrt())]);
//! let compiled = CompiledHistogram::compile(&hist);
//!
//! // One tier per process; publish under a dataset id.
//! let tier = ServeTier::new(4); // shards per histogram ≈ serving cores
//! tier.publish(1, &compiled, 16);
//!
//! // One handle per serving thread; all methods are fallible.
//! std::thread::scope(|s| {
//!     for _ in 0..2 {
//!         s.spawn(|| {
//!             let mut handle = tier.handle();
//!             let queries = [(0, 3), (2, 5)];
//!             let mut out = [0.0; 2];
//!             handle.try_selectivity_batch_into(1, &queries, &mut out).unwrap();
//!             assert!((out[0] - 0.5).abs() < 1e-9);
//!             assert!(handle.try_selectivity(1, 9, 2).is_err()); // lo > hi: error, no panic
//!         });
//!     }
//! });
//! ```
//!
//! The differential and swap-under-load suites live in
//! `tests/serve_tier.rs` at the workspace root; the `serve_throughput`
//! bench in `wh-bench` drives a closed-loop thread-per-core load
//! generator against this tier.

mod epoch;
mod tier;

pub use epoch::{EpochReader, EpochSwap};
pub use tier::{
    DatasetHealth, DatasetId, ServeError, ServeHandle, ServeTier, Snapshot, QUARANTINE_AFTER,
};

// Re-exported so serving callers can name query types without depending
// on `wh-query` directly.
pub use wh_query::{
    BatchScratch, BatchScratch2D, CompiledHistogram, CompiledHistogram2D, QueryError,
    ShardedHistogram,
};
