//! The serving tier: dataset-addressed, key-range-sharded histogram
//! snapshots behind the epoch swap, answered through per-thread handles.
//!
//! ```text
//!                       ServeTier (one per process)
//!        publish/remove ──▶ writer lock ──▶ EpochSwap<Snapshot>
//!                                               │ one Acquire load per batch
//!              ┌────────────────────────────────┼──────────────────┐
//!        ServeHandle (thread 0)          ServeHandle (thread 1)    …
//!        EpochReader + BatchScratch      EpochReader + BatchScratch
//!              │                                │
//!        route by dataset id ──▶ ShardedHistogram ──▶ fan out by key
//!        (binary search)          (Arc, immutable)     range, merge
//! ```
//!
//! Every query runs through the **fallible** `try_*` path of `wh-query`:
//! a malformed or out-of-domain query from traffic the process does not
//! control comes back as a [`ServeError`] value — a serving thread never
//! panics on query input. Answers are bit-identical to querying the
//! published [`CompiledHistogram`] directly, whatever the shard count
//! and however many generations have swapped in under the reader.
//!
//! **Degradation (PR 8).** Publishing is where upstream failures arrive:
//! a rebuild pipeline (the MapReduce path) can fail or panic. The tier
//! absorbs both without dropping reads. [`ServeTier::try_publish`] runs
//! a fallible rebuild *outside* the writer lock and, on `Err`, leaves
//! the last good snapshot serving while counting the failure against the
//! dataset; [`QUARANTINE_AFTER`] consecutive failures mark it
//! [`DatasetHealth::Quarantined`] in [`ServeTier::dataset_health`] /
//! [`ServeTier::degraded_datasets`] so an operator (or a scheduler) can
//! see which datasets are stale — readers never consult the failure
//! state and keep answering from the snapshot. A rebuild that *panics*
//! mid-publish is also safe: `parking_lot` mutexes do not poison, the
//! epoch swap only ever stores whole snapshots, and the entry is built
//! before the writer lock is taken, so the previous generation keeps
//! serving and later publishes proceed normally.
//!
//! **Freshness (PR 9).** `try_publish` is also the landing point of the
//! incremental-maintenance loop: instead of a from-scratch rebuild, the
//! closure re-snapshots a delta-merged histogram
//! (`wh_core::incremental::MaintainedHistogram` → compile) in `O(d·log u)`
//! per arriving segment, and [`ServeTier::dataset_records`] exposes the
//! record count the dataset was last published with so the refresh can
//! republish at `records + delta`. The epoch-swap, health, and
//! degradation machinery is unchanged — a delta publish is just a
//! publish that got cheap.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use wh_query::{
    BatchScratch, BatchScratch2D, CompiledHistogram, CompiledHistogram2D, QueryError,
    ShardedHistogram,
};

use crate::epoch::{EpochReader, EpochSwap};

/// Identifies one published histogram inside the tier.
pub type DatasetId = u32;

/// Why the tier could not answer: the dataset is unknown to the current
/// snapshot, or the query itself is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// No histogram is published under this id in the current snapshot.
    UnknownDataset(DatasetId),
    /// The query was malformed; see [`QueryError`].
    Query(QueryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ServeError::UnknownDataset(id) => {
                write!(f, "dataset {id} is not published in the serving snapshot")
            }
            ServeError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::UnknownDataset(_) => None,
            ServeError::Query(e) => Some(e),
        }
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

/// Consecutive [`ServeTier::try_publish`] failures after which a dataset
/// is reported [`DatasetHealth::Quarantined`] rather than merely
/// degraded. Quarantine is a *reporting* state: reads keep being served
/// from the last good snapshot, and one successful publish heals it.
pub const QUARANTINE_AFTER: u32 = 3;

/// Rebuild health of one published dataset, as seen by
/// [`ServeTier::dataset_health`]. Health tracks the *publish* path only;
/// a degraded or quarantined dataset still answers queries from its last
/// good snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetHealth {
    /// The last publish attempt (if any) succeeded.
    Healthy,
    /// This many consecutive rebuilds failed (fewer than
    /// [`QUARANTINE_AFTER`]); the dataset serves its last good snapshot.
    Degraded(u32),
    /// At least [`QUARANTINE_AFTER`] consecutive rebuilds failed; the
    /// snapshot being served is considered stale until a rebuild lands.
    Quarantined(u32),
}

impl DatasetHealth {
    fn from_failures(failures: u32) -> Self {
        match failures {
            0 => DatasetHealth::Healthy,
            n if n < QUARANTINE_AFTER => DatasetHealth::Degraded(n),
            n => DatasetHealth::Quarantined(n),
        }
    }
}

/// One published histogram: its sharded compiled form plus the record
/// count its selectivities are relative to. Entries are shared by `Arc`
/// across snapshot generations, so republishing dataset A never copies
/// dataset B's segments.
#[derive(Debug)]
struct DatasetEntry {
    id: DatasetId,
    records: u64,
    sharded: ShardedHistogram,
}

/// One published **2-D** histogram (PR 10): the compiled rectangle-query
/// form plus its record count. 2-D datasets live in their own id
/// namespace next to the 1-D entries and ride the same epoch swap —
/// publishing either kind bumps the one shared generation.
#[derive(Debug)]
struct DatasetEntry2d {
    id: DatasetId,
    records: u64,
    compiled: CompiledHistogram2D,
}

/// One complete generation of the tier: every published dataset,
/// ascending by id. Immutable once built — the epoch swap publishes
/// whole snapshots, so a reader holds either all of generation `g` or
/// all of `g + 1`, never a mix.
#[derive(Debug)]
pub struct Snapshot {
    generation: u64,
    entries: Vec<Arc<DatasetEntry>>,
    entries2d: Vec<Arc<DatasetEntry2d>>,
}

impl Snapshot {
    /// The generation counter this snapshot was published at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of 1-D datasets published in this snapshot.
    pub fn num_datasets(&self) -> usize {
        self.entries.len()
    }

    /// Number of 2-D datasets published in this snapshot.
    pub fn num_datasets_2d(&self) -> usize {
        self.entries2d.len()
    }

    fn entry(&self, id: DatasetId) -> Result<&DatasetEntry, ServeError> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .map(|i| &*self.entries[i])
            .map_err(|_| ServeError::UnknownDataset(id))
    }

    fn entry2d(&self, id: DatasetId) -> Result<&DatasetEntry2d, ServeError> {
        self.entries2d
            .binary_search_by_key(&id, |e| e.id)
            .map(|i| &*self.entries2d[i])
            .map_err(|_| ServeError::UnknownDataset(id))
    }
}

/// The process-wide serving tier. Histograms are published by dataset
/// id, sliced into key-range shards, and served lock-free through
/// [`ServeHandle`]s; rebuilt histograms swap in atomically as whole
/// [`Snapshot`] generations.
#[derive(Debug)]
pub struct ServeTier {
    shards: usize,
    swap: EpochSwap<Snapshot>,
    /// Serializes publishers: each builds its snapshot from the previous
    /// one, so concurrent publishes must not interleave read-modify-write.
    writer: Mutex<()>,
    /// Consecutive `try_publish` failures per dataset. Never consulted on
    /// the read path — health is operator-facing reporting, not a gate.
    failures: Mutex<HashMap<DatasetId, u32>>,
}

impl ServeTier {
    /// An empty tier (generation 0) whose published histograms are
    /// sliced into `shards_per_histogram` key-range shards — typically
    /// the serving core count. Requests beyond a histogram's segment
    /// count clamp; `0` is treated as 1.
    pub fn new(shards_per_histogram: usize) -> Self {
        Self {
            shards: shards_per_histogram,
            swap: EpochSwap::new(Arc::new(Snapshot {
                generation: 0,
                entries: Vec::new(),
                entries2d: Vec::new(),
            })),
            writer: Mutex::new(()),
            failures: Mutex::new(HashMap::new()),
        }
    }

    /// The shard count histograms are sliced into at publish time.
    pub fn shards_per_histogram(&self) -> usize {
        self.shards
    }

    /// Publishes (or republishes) `compiled` under `id`, with
    /// selectivities relative to `records`. Returns the new generation.
    /// Readers mid-batch keep the previous generation until their next
    /// batch; they never block and never observe a half-published tier.
    pub fn publish(&self, id: DatasetId, compiled: &CompiledHistogram, records: u64) -> u64 {
        let entry = Arc::new(DatasetEntry {
            id,
            records,
            sharded: ShardedHistogram::shard(compiled, self.shards),
        });
        let _writer = self.writer.lock();
        let (_, current) = self.swap.load();
        let mut entries = current.entries.clone();
        match entries.binary_search_by_key(&id, |e| e.id) {
            Ok(i) => entries[i] = entry,
            Err(i) => entries.insert(i, entry),
        }
        let generation = current.generation + 1;
        self.swap.store(Arc::new(Snapshot {
            generation,
            entries,
            entries2d: current.entries2d.clone(),
        }));
        drop(_writer);
        // A landed publish heals the dataset whatever its failure streak.
        self.failures.lock().remove(&id);
        generation
    }

    /// Publishes (or republishes) a compiled **2-D** histogram under
    /// `id` (its own namespace, separate from the 1-D ids), with
    /// selectivities relative to `records`. The snapshot swaps in
    /// atomically exactly as for [`ServeTier::publish`]: readers
    /// mid-batch keep the previous generation and never observe a
    /// half-published tier.
    pub fn publish2d(&self, id: DatasetId, compiled: &CompiledHistogram2D, records: u64) -> u64 {
        let entry = Arc::new(DatasetEntry2d {
            id,
            records,
            compiled: compiled.clone(),
        });
        let _writer = self.writer.lock();
        let (_, current) = self.swap.load();
        let mut entries2d = current.entries2d.clone();
        match entries2d.binary_search_by_key(&id, |e| e.id) {
            Ok(i) => entries2d[i] = entry,
            Err(i) => entries2d.insert(i, entry),
        }
        let generation = current.generation + 1;
        self.swap.store(Arc::new(Snapshot {
            generation,
            entries: current.entries.clone(),
            entries2d,
        }));
        generation
    }

    /// Withdraws 2-D dataset `id` from serving. Returns the new
    /// generation, or `None` (and publishes nothing) when absent.
    pub fn remove2d(&self, id: DatasetId) -> Option<u64> {
        let _writer = self.writer.lock();
        let (_, current) = self.swap.load();
        let i = current.entries2d.binary_search_by_key(&id, |e| e.id).ok()?;
        let mut entries2d = current.entries2d.clone();
        entries2d.remove(i);
        let generation = current.generation + 1;
        self.swap.store(Arc::new(Snapshot {
            generation,
            entries: current.entries.clone(),
            entries2d,
        }));
        Some(generation)
    }

    /// Publishes the result of a **fallible** rebuild of `id`. The
    /// `rebuild` closure runs outside the writer lock (a slow or hung
    /// rebuild never blocks other publishers); on `Ok` the histogram is
    /// published exactly like [`ServeTier::publish`] and the dataset's
    /// failure streak resets. On `Err` **nothing changes for readers** —
    /// the last good snapshot keeps serving, the generation does not
    /// advance — and the dataset's consecutive-failure count rises,
    /// surfacing through [`ServeTier::dataset_health`] until a rebuild
    /// lands. The error is returned to the caller untouched.
    pub fn try_publish<E>(
        &self,
        id: DatasetId,
        records: u64,
        rebuild: impl FnOnce() -> Result<CompiledHistogram, E>,
    ) -> Result<u64, E> {
        match rebuild() {
            Ok(compiled) => Ok(self.publish(id, &compiled, records)),
            Err(e) => {
                *self.failures.lock().entry(id).or_insert(0) += 1;
                Err(e)
            }
        }
    }

    /// The rebuild health of `id`: healthy, degraded, or quarantined
    /// after [`QUARANTINE_AFTER`] consecutive failed rebuilds. Unknown
    /// and never-failed datasets are healthy. Reads are *not* gated on
    /// health — this is for operators and rebuild schedulers.
    pub fn dataset_health(&self, id: DatasetId) -> DatasetHealth {
        DatasetHealth::from_failures(self.failures.lock().get(&id).copied().unwrap_or(0))
    }

    /// Every dataset with a non-zero failure streak, ascending by id —
    /// the tier's degraded-mode report. Empty means every publish path
    /// is healthy.
    pub fn degraded_datasets(&self) -> Vec<(DatasetId, DatasetHealth)> {
        let mut out: Vec<(DatasetId, DatasetHealth)> = self
            .failures
            .lock()
            .iter()
            .map(|(&id, &n)| (id, DatasetHealth::from_failures(n)))
            .collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Withdraws `id` from serving. Returns the new generation, or
    /// `None` (and publishes nothing) when `id` was not present.
    /// Removing a dataset also forgets its failure streak.
    pub fn remove(&self, id: DatasetId) -> Option<u64> {
        let _writer = self.writer.lock();
        let (_, current) = self.swap.load();
        let i = current.entries.binary_search_by_key(&id, |e| e.id).ok()?;
        let mut entries = current.entries.clone();
        entries.remove(i);
        let generation = current.generation + 1;
        self.swap.store(Arc::new(Snapshot {
            generation,
            entries,
            entries2d: current.entries2d.clone(),
        }));
        drop(_writer);
        self.failures.lock().remove(&id);
        Some(generation)
    }

    /// The current generation counter.
    pub fn generation(&self) -> u64 {
        self.swap.load().1.generation
    }

    /// The record count `id` was last published with, or `None` when the
    /// dataset is absent from the current snapshot. The incremental-
    /// maintenance loop reads this before a delta publish so the
    /// refreshed snapshot lands with `records + newly absorbed records`,
    /// keeping served selectivities relative to *all* data.
    pub fn dataset_records(&self, id: DatasetId) -> Option<u64> {
        self.swap.load().1.entry(id).ok().map(|e| e.records)
    }

    /// A serving handle for one reader thread: its own snapshot cache
    /// and batch scratch. Handles borrow the tier, so a thread-per-core
    /// server hands one to each worker inside `std::thread::scope`.
    pub fn handle(&self) -> ServeHandle<'_> {
        ServeHandle {
            tier: self,
            reader: self.swap.reader(),
            scratch: BatchScratch::new(),
            scratch2d: BatchScratch2D::new(),
        }
    }
}

/// One reader thread's view of a [`ServeTier`]: an [`EpochReader`]
/// caching the current [`Snapshot`] and a recycled [`BatchScratch`].
/// Every method is fallible; a bad query returns a [`ServeError`] and
/// leaves the output buffer untouched, so one malformed request in a
/// stream cannot take the serving thread down or corrupt its neighbors'
/// answers.
#[derive(Debug)]
pub struct ServeHandle<'t> {
    tier: &'t ServeTier,
    reader: EpochReader<Snapshot>,
    scratch: BatchScratch,
    scratch2d: BatchScratch2D,
}

impl ServeHandle<'_> {
    /// The snapshot this handle currently serves from, refreshed first
    /// if the tier republished (one atomic load; lock-free when nothing
    /// changed).
    pub fn snapshot(&mut self) -> &Snapshot {
        self.reader.get(&self.tier.swap)
    }

    /// Answers a batch of range sums from `id` into `out`,
    /// bit-identical to the unsharded compiled histogram.
    pub fn try_range_sum_batch_into(
        &mut self,
        id: DatasetId,
        queries: &[(u64, u64)],
        out: &mut [f64],
    ) -> Result<(), ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        let entry = snap.entry(id)?;
        entry
            .sharded
            .try_range_sum_batch_into(queries, &mut self.scratch, out)?;
        Ok(())
    }

    /// Answers a batch of selectivities from `id` into `out`, relative
    /// to the record count published with the dataset.
    pub fn try_selectivity_batch_into(
        &mut self,
        id: DatasetId,
        queries: &[(u64, u64)],
        out: &mut [f64],
    ) -> Result<(), ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        let entry = snap.entry(id)?;
        entry
            .sharded
            .try_selectivity_batch_into(queries, entry.records, &mut self.scratch, out)?;
        Ok(())
    }

    /// Answers a batch of point estimates from `id` into `out`.
    pub fn try_point_estimate_batch_into(
        &mut self,
        id: DatasetId,
        keys: &[u64],
        out: &mut [f64],
    ) -> Result<(), ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        let entry = snap.entry(id)?;
        entry
            .sharded
            .try_point_estimate_batch_into(keys, &mut self.scratch, out)?;
        Ok(())
    }

    /// One range sum from `id`.
    pub fn try_range_sum(&mut self, id: DatasetId, lo: u64, hi: u64) -> Result<f64, ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        Ok(snap.entry(id)?.sharded.try_range_sum(lo, hi)?)
    }

    /// One selectivity from `id`, relative to its published record count.
    pub fn try_selectivity(&mut self, id: DatasetId, lo: u64, hi: u64) -> Result<f64, ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        let entry = snap.entry(id)?;
        Ok(entry.sharded.try_selectivity(lo, hi, entry.records)?)
    }

    /// One point estimate from `id`.
    pub fn try_point_estimate(&mut self, id: DatasetId, x: u64) -> Result<f64, ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        Ok(snap.entry(id)?.sharded.try_point_estimate(x)?)
    }

    /// Answers a batch of 2-D rectangle sums from `id` into `out`,
    /// bit-identical to the published [`CompiledHistogram2D`]. Each
    /// query is `(xlo, xhi, ylo, yhi)`, inclusive on both axes.
    pub fn try_rectangle_sum_batch_into(
        &mut self,
        id: DatasetId,
        queries: &[(u64, u64, u64, u64)],
        out: &mut [f64],
    ) -> Result<(), ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        let entry = snap.entry2d(id)?;
        entry
            .compiled
            .try_rectangle_sum_batch_into(queries, &mut self.scratch2d, out)?;
        Ok(())
    }

    /// Answers a batch of 2-D rectangle selectivities from `id` into
    /// `out`, relative to the record count published with the dataset.
    pub fn try_rectangle_selectivity_batch_into(
        &mut self,
        id: DatasetId,
        queries: &[(u64, u64, u64, u64)],
        out: &mut [f64],
    ) -> Result<(), ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        let entry = snap.entry2d(id)?;
        entry.compiled.try_selectivity_batch_into(
            queries,
            entry.records,
            &mut self.scratch2d,
            out,
        )?;
        Ok(())
    }

    /// One 2-D rectangle sum from `id`.
    pub fn try_rectangle_sum(
        &mut self,
        id: DatasetId,
        query: (u64, u64, u64, u64),
    ) -> Result<f64, ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        Ok(snap.entry2d(id)?.compiled.try_rectangle_sum(query)?)
    }

    /// One 2-D rectangle selectivity from `id`, relative to its
    /// published record count.
    pub fn try_rectangle_selectivity(
        &mut self,
        id: DatasetId,
        query: (u64, u64, u64, u64),
    ) -> Result<f64, ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        let entry = snap.entry2d(id)?;
        Ok(entry.compiled.try_selectivity(query, entry.records)?)
    }

    /// One 2-D cell estimate from `id`.
    pub fn try_point_estimate2d(
        &mut self,
        id: DatasetId,
        x: u64,
        y: u64,
    ) -> Result<f64, ServeError> {
        let snap = self.reader.get(&self.tier.swap);
        Ok(snap.entry2d(id)?.compiled.try_point_estimate(x, y)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_core::WaveletHistogram;
    use wh_wavelet::haar::forward;
    use wh_wavelet::select::top_k_magnitude;
    use wh_wavelet::Domain;

    fn compiled_from_signal(v: &[f64], k: usize) -> CompiledHistogram {
        let domain = Domain::covering(v.len() as u64).unwrap();
        let w = forward(v);
        let top = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
        CompiledHistogram::compile(&WaveletHistogram::new(
            domain,
            top.iter().map(|e| (e.slot, e.value)),
        ))
    }

    #[test]
    fn publish_remove_and_generations() {
        let tier = ServeTier::new(4);
        assert_eq!(tier.generation(), 0);
        let a = compiled_from_signal(&[1.0, 2.0, 3.0, 4.0], 4);
        let b = compiled_from_signal(&[9.0, 9.0], 2);
        assert_eq!(tier.publish(7, &a, 10), 1);
        assert_eq!(tier.publish(3, &b, 18), 2);
        assert_eq!(tier.publish(7, &a, 10), 3); // republish same id
        let mut h = tier.handle();
        assert_eq!(h.snapshot().num_datasets(), 2);
        assert_eq!(h.snapshot().generation(), 3);
        assert_eq!(tier.remove(7), Some(4));
        assert_eq!(tier.remove(7), None);
        assert_eq!(tier.generation(), 4);
        assert_eq!(h.snapshot().num_datasets(), 1);
    }

    #[test]
    fn handle_answers_bit_identical_to_the_compiled_form() {
        let v: Vec<f64> = (0..128).map(|i| ((i * 13) % 29) as f64).collect();
        let compiled = compiled_from_signal(&v, 15);
        let n = 5_000u64;
        let tier = ServeTier::new(3);
        tier.publish(42, &compiled, n);
        let mut h = tier.handle();

        let queries: Vec<(u64, u64)> = (0..100u64).map(|i| (i, i + 27)).collect();
        let mut got = vec![0.0; queries.len()];
        h.try_selectivity_batch_into(42, &queries, &mut got)
            .unwrap();
        let mut want = vec![0.0; queries.len()];
        compiled.selectivity_batch_into(&queries, n, &mut BatchScratch::new(), &mut want);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            h.try_range_sum(42, 5, 99).unwrap().to_bits(),
            compiled.range_sum(5, 99).to_bits()
        );
        assert_eq!(
            h.try_point_estimate(42, 77).unwrap().to_bits(),
            compiled.point_estimate(77).to_bits()
        );
    }

    #[test]
    fn bad_queries_are_errors_not_panics() {
        let tier = ServeTier::new(2);
        let compiled = compiled_from_signal(&[1.0, 2.0, 3.0, 4.0], 4);
        tier.publish(1, &compiled, 0); // zero records: selectivity must error
        let mut h = tier.handle();
        let sentinel = [-1.0; 2];
        let mut out = sentinel;

        assert_eq!(h.try_range_sum(9, 0, 1), Err(ServeError::UnknownDataset(9)));
        assert_eq!(
            h.try_range_sum(1, 3, 2),
            Err(ServeError::Query(QueryError::EmptyRange { lo: 3, hi: 2 }))
        );
        assert_eq!(
            h.try_selectivity(1, 0, 1),
            Err(ServeError::Query(QueryError::ZeroRecords))
        );
        let err = h
            .try_range_sum_batch_into(1, &[(0, 1), (0, 77)], &mut out)
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Query(QueryError::OutOfDomain { key: 77, .. })
        ));
        assert_eq!(out, sentinel, "failed batch must not touch the output");
        // The handle keeps serving after every error.
        assert!(h.try_range_sum(1, 0, 3).is_ok());
    }

    #[test]
    fn republish_swaps_answers_atomically_for_existing_handles() {
        let tier = ServeTier::new(2);
        let old = compiled_from_signal(&[4.0, 0.0, 0.0, 0.0], 4);
        let new = compiled_from_signal(&[0.0, 0.0, 0.0, 4.0], 4);
        tier.publish(5, &old, 4);
        let mut h = tier.handle();
        assert_eq!(
            h.try_range_sum(5, 0, 0).unwrap().to_bits(),
            old.range_sum(0, 0).to_bits()
        );
        tier.publish(5, &new, 4);
        assert_eq!(
            h.try_range_sum(5, 0, 0).unwrap().to_bits(),
            new.range_sum(0, 0).to_bits()
        );
    }

    #[test]
    fn twod_publish_swap_and_remove_share_the_generation() {
        use wh_core::twod::WaveletHistogram2d;
        use wh_query::CompiledHistogram2D;
        let domain = Domain::new(3).unwrap();
        // Average-only histograms (packed slot 0 is the 2-D average).
        let old = CompiledHistogram2D::compile(&WaveletHistogram2d::new(domain, [(0, 64.0 / 8.0)]));
        let new = CompiledHistogram2D::compile(&WaveletHistogram2d::new(domain, [(0, 32.0 / 8.0)]));
        let tier = ServeTier::new(2);
        let oned = compiled_from_signal(&[1.0, 2.0, 3.0, 4.0], 4);
        assert_eq!(tier.publish(5, &oned, 10), 1);
        assert_eq!(tier.publish2d(5, &old, 64), 2); // same id, own namespace
        let mut h = tier.handle();
        assert_eq!(h.snapshot().num_datasets(), 1);
        assert_eq!(h.snapshot().num_datasets_2d(), 1);

        // Bit-identical to direct serving, single and batched.
        let queries = [(0, 7, 0, 7), (1, 3, 2, 5), (0, 0, 0, 0)];
        let mut got = [0.0; 3];
        h.try_rectangle_sum_batch_into(5, &queries, &mut got)
            .unwrap();
        for (&q, &g) in queries.iter().zip(&got) {
            assert_eq!(g.to_bits(), old.rectangle_sum(q).to_bits());
        }
        assert_eq!(
            h.try_rectangle_selectivity(5, (0, 7, 0, 7))
                .unwrap()
                .to_bits(),
            old.selectivity((0, 7, 0, 7), 64).to_bits()
        );
        assert_eq!(
            h.try_point_estimate2d(5, 3, 3).unwrap().to_bits(),
            old.point_estimate(3, 3).to_bits()
        );

        // Republish swaps answers atomically for the existing handle,
        // and leaves the 1-D entry serving untouched.
        tier.publish2d(5, &new, 64);
        assert_eq!(
            h.try_rectangle_sum(5, (0, 7, 0, 7)).unwrap().to_bits(),
            new.rectangle_sum((0, 7, 0, 7)).to_bits()
        );
        assert_eq!(
            h.try_range_sum(5, 0, 3).unwrap().to_bits(),
            oned.range_sum(0, 3).to_bits()
        );

        // Unknown ids and malformed queries are errors, not panics.
        assert_eq!(
            h.try_rectangle_sum(6, (0, 1, 0, 1)),
            Err(ServeError::UnknownDataset(6))
        );
        assert_eq!(
            h.try_rectangle_sum(5, (3, 2, 0, 1)),
            Err(ServeError::Query(QueryError::EmptyRange { lo: 3, hi: 2 }))
        );

        assert_eq!(tier.remove2d(5), Some(4));
        assert_eq!(tier.remove2d(5), None);
        assert_eq!(h.snapshot().num_datasets_2d(), 0);
        assert_eq!(h.snapshot().num_datasets(), 1);
    }

    #[test]
    fn error_messages_name_the_failure() {
        assert_eq!(
            ServeError::UnknownDataset(12).to_string(),
            "dataset 12 is not published in the serving snapshot"
        );
        assert_eq!(
            ServeError::Query(QueryError::ZeroRecords).to_string(),
            "selectivity needs a positive record count"
        );
    }

    #[test]
    fn tier_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<ServeTier>();
        assert_sync_send::<Snapshot>();
    }

    #[test]
    fn failed_rebuilds_degrade_then_quarantine_then_heal() {
        let tier = ServeTier::new(2);
        let good = compiled_from_signal(&[1.0, 2.0, 3.0, 4.0], 4);
        tier.publish(5, &good, 4);
        assert_eq!(tier.dataset_health(5), DatasetHealth::Healthy);
        assert!(tier.degraded_datasets().is_empty());

        for n in 1..=QUARANTINE_AFTER + 1 {
            let err = tier
                .try_publish(5, 4, || Err::<CompiledHistogram, _>("pipeline down"))
                .unwrap_err();
            assert_eq!(err, "pipeline down");
            let want = if n < QUARANTINE_AFTER {
                DatasetHealth::Degraded(n)
            } else {
                DatasetHealth::Quarantined(n)
            };
            assert_eq!(tier.dataset_health(5), want);
            // The snapshot never moved: readers still get generation 1.
            assert_eq!(tier.generation(), 1);
        }
        assert_eq!(tier.degraded_datasets().len(), 1);

        // A landed rebuild heals the streak and advances the generation.
        let gen = tier
            .try_publish(5, 4, || Ok::<_, &str>(compiled_from_signal(&[5.0; 4], 4)))
            .unwrap();
        assert_eq!(gen, 2);
        assert_eq!(tier.dataset_health(5), DatasetHealth::Healthy);
        assert!(tier.degraded_datasets().is_empty());
    }

    #[test]
    fn degraded_dataset_keeps_serving_the_last_good_snapshot() {
        let tier = ServeTier::new(2);
        let good = compiled_from_signal(&[4.0, 0.0, 0.0, 0.0], 4);
        tier.publish(9, &good, 4);
        let mut h = tier.handle();
        let before = h.try_range_sum(9, 0, 3).unwrap();
        let _ = tier.try_publish(9, 4, || Err::<CompiledHistogram, _>(()));
        assert_eq!(tier.dataset_health(9), DatasetHealth::Degraded(1));
        assert_eq!(
            h.try_range_sum(9, 0, 3).unwrap().to_bits(),
            before.to_bits(),
            "reads are not gated on health"
        );
    }

    #[test]
    fn dataset_records_tracks_the_published_count() {
        let tier = ServeTier::new(2);
        assert_eq!(tier.dataset_records(4), None);
        let compiled = compiled_from_signal(&[1.0, 2.0, 3.0, 4.0], 4);
        tier.publish(4, &compiled, 10);
        assert_eq!(tier.dataset_records(4), Some(10));
        // A delta publish lands with the grown count; a failed rebuild
        // leaves the last published count serving.
        tier.try_publish(4, 10 + 7, || Ok::<_, ()>(compiled.clone()))
            .unwrap();
        assert_eq!(tier.dataset_records(4), Some(17));
        let _ = tier.try_publish(4, 99, || Err::<CompiledHistogram, _>(()));
        assert_eq!(tier.dataset_records(4), Some(17));
        tier.remove(4);
        assert_eq!(tier.dataset_records(4), None);
    }

    #[test]
    fn removing_a_dataset_forgets_its_failure_streak() {
        let tier = ServeTier::new(1);
        let good = compiled_from_signal(&[1.0, 1.0], 2);
        tier.publish(3, &good, 2);
        let _ = tier.try_publish(3, 2, || Err::<CompiledHistogram, _>(()));
        assert_eq!(tier.dataset_health(3), DatasetHealth::Degraded(1));
        tier.remove(3);
        assert_eq!(tier.dataset_health(3), DatasetHealth::Healthy);
        assert!(tier.degraded_datasets().is_empty());
    }
}
