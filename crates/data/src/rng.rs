//! Small, fast, seedable RNG primitives for position-addressable data.
//!
//! [`SplitMix64`] is used as the per-record generator: deriving one from a
//! `(seed, split, position)` triple costs a couple of multiplies, so random
//! access into a dataset is as cheap as sequential scanning. It passes
//! standard statistical batteries for this workload (key sampling), and —
//! unlike `StdRng` (ChaCha12) — costs nothing to initialise per record.

use rand::{Error, RngCore, SeedableRng};

/// Stafford's Mix13 finaliser — the avalanche function behind SplitMix64.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines a dataset seed with a split id and record position into a
/// per-record seed. Each component is avalanched so that neighbouring
/// positions yield unrelated streams.
#[inline]
pub fn record_seed(dataset_seed: u64, split: u32, position: u64) -> u64 {
    let a = mix64(dataset_seed ^ 0x9e37_79b9_7f4a_7c15);
    let b = mix64(a ^ (split as u64).wrapping_mul(0xd604_5c14_7c91_7c3d));
    mix64(b ^ position.wrapping_mul(0xa24b_aed4_963e_e407))
}

/// SplitMix64: a 64-bit state RNG with a single add+mix step per output.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    #[allow(clippy::should_implement_trait)] // not an Iterator; RngCore-style
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift rejection).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-high rejection sampling; unbiased.
        loop {
            let x = self.next();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_reasonable() {
        let mut r = SplitMix64::new(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn record_seed_decorrelates_positions() {
        // Adjacent positions must give unrelated seeds (no shared prefix).
        let s0 = record_seed(1, 0, 0);
        let s1 = record_seed(1, 0, 1);
        let diff = (s0 ^ s1).count_ones();
        assert!(
            diff > 10,
            "adjacent record seeds too similar: {diff} differing bits"
        );
    }

    #[test]
    fn record_seed_distinguishes_splits() {
        assert_ne!(record_seed(1, 0, 5), record_seed(1, 1, 5));
        assert_ne!(record_seed(1, 0, 5), record_seed(2, 0, 5));
    }

    #[test]
    fn seedable_trait_matches_native_constructor() {
        // The rand-trait entry points must be aliases of `new`: datasets
        // seeded through either path replay identical streams.
        let mut native = SplitMix64::new(0xdead_beef);
        let mut from_seed = SplitMix64::from_seed(0xdead_beefu64.to_le_bytes());
        let mut from_u64 = SplitMix64::seed_from_u64(0xdead_beef);
        for _ in 0..64 {
            let x = native.next();
            assert_eq!(x, from_seed.next_u64());
            assert_eq!(x, from_u64.next_u64());
        }
    }

    #[test]
    fn fill_bytes_partial_tail() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
