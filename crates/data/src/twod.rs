//! Two-dimensional datasets for the multi-dimensional extensions (§3/§4
//! "Multi-dimensional wavelets").
//!
//! Keys are cells `(x, y) ∈ [u]²`. The generators mirror the 1-D ones, plus
//! a *correlated* model (`y` near `x`) that exercises the sparse-data
//! regime the paper warns about: with mass spread along a diagonal band,
//! most cells are empty and sampling error is relatively larger.
//!
//! [`Distribution2d::WorldCup`] is the 2-D face of the synthetic
//! WorldCup'98 log in [`crate::worldcup`]: the access trace viewed as
//! (time bucket × object id), the shape a cardinality estimator probes
//! with time × object rectangle predicates. Object popularity is
//! Zipf(1.05) as in the 1-D model; each object's requests cluster around
//! a per-object burst phase in time, with Zipf(1.2) burst offsets, so
//! the joint distribution is genuinely correlated rather than a product
//! of its marginals.

use crate::rng::{record_seed, SplitMix64};
use crate::worldcup::WORLDCUP_RECORD_BYTES;
use crate::zipf::Zipf;
use wh_wavelet::Domain;

/// One 2-D record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record2d {
    /// Row key (0-based).
    pub x: u64,
    /// Column key (0-based).
    pub y: u64,
    /// Stored size in bytes.
    pub bytes: u32,
}

/// 2-D key distribution.
#[derive(Debug, Clone, Copy)]
pub enum Distribution2d {
    /// Independent Zipf marginals.
    IndependentZipf { alpha_x: f64, alpha_y: f64 },
    /// `x` Zipf, `y = (x + Laplace-ish offset) mod u`: a diagonal band.
    Correlated { alpha: f64, spread: u64 },
    /// Uniform cells.
    Uniform,
    /// WorldCup-style (time × object): `y` an object id from Zipf(1.05),
    /// `x` a time bucket near that object's burst phase, offset by
    /// Zipf(1.2). Mirrors [`crate::worldcup::WorldCupModel`] in 2-D.
    WorldCup,
}

/// A lazy 2-D dataset over `[u]²`, split like its 1-D counterpart.
#[derive(Debug, Clone)]
pub struct Dataset2d {
    domain: Domain,
    distribution: Distribution2d,
    num_records: u64,
    num_splits: u32,
    record_bytes: u32,
    seed: u64,
    zx: Option<Zipf>,
    zy: Option<Zipf>,
}

impl Dataset2d {
    /// Creates a 2-D dataset; `domain` applies per dimension.
    pub fn new(
        domain: Domain,
        distribution: Distribution2d,
        num_records: u64,
        num_splits: u32,
        seed: u64,
    ) -> Self {
        assert!(num_records > 0 && num_splits > 0);
        assert!(u64::from(num_splits) <= num_records);
        let (zx, zy) = match distribution {
            Distribution2d::IndependentZipf { alpha_x, alpha_y } => (
                Some(Zipf::new(domain.u(), alpha_x)),
                Some(Zipf::new(domain.u(), alpha_y)),
            ),
            Distribution2d::Correlated { alpha, .. } => (Some(Zipf::new(domain.u(), alpha)), None),
            Distribution2d::Uniform => (None, None),
            // Burst offsets in time (zx) and object popularity (zy),
            // with the same exponents as the 1-D WorldCup model.
            Distribution2d::WorldCup => (
                Some(Zipf::new(domain.u(), 1.2)),
                Some(Zipf::new(domain.u(), 1.05)),
            ),
        };
        let record_bytes = match distribution {
            Distribution2d::WorldCup => WORLDCUP_RECORD_BYTES,
            _ => 8,
        };
        Self {
            domain,
            distribution,
            num_records,
            num_splits,
            record_bytes,
            seed,
            zx,
            zy,
        }
    }

    /// Per-dimension domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Total records.
    pub fn num_records(&self) -> u64 {
        self.num_records
    }

    /// Number of splits.
    pub fn num_splits(&self) -> u32 {
        self.num_splits
    }

    /// Stored bytes per record (40 for the WorldCup log, 8 otherwise).
    pub fn record_bytes(&self) -> u32 {
        self.record_bytes
    }

    /// Records in split `j`.
    pub fn split_records(&self, j: u32) -> u64 {
        assert!(j < self.num_splits);
        let m = u64::from(self.num_splits);
        self.num_records / m + u64::from(u64::from(j) < self.num_records % m)
    }

    /// `O(1)` access to record `(j, i)`.
    pub fn record_at(&self, j: u32, i: u64) -> Record2d {
        let mut rng = SplitMix64::new(record_seed(self.seed ^ 0x2d2d, j, i));
        let (x, y) = match self.distribution {
            Distribution2d::IndependentZipf { .. } => (
                self.zx.as_ref().expect("zx set").sample(&mut rng),
                self.zy.as_ref().expect("zy set").sample(&mut rng),
            ),
            Distribution2d::Correlated { spread, .. } => {
                let x = self.zx.as_ref().expect("zx set").sample(&mut rng);
                // Two-sided geometric-ish offset within ±spread.
                let off = rng.next_below(2 * spread + 1) as i64 - spread as i64;
                let y = (x as i64 + off).rem_euclid(self.domain.u() as i64) as u64;
                (x, y)
            }
            Distribution2d::Uniform => (
                rng.next_below(self.domain.u()),
                rng.next_below(self.domain.u()),
            ),
            Distribution2d::WorldCup => {
                let u = self.domain.u();
                let object = self.zy.as_ref().expect("zy set").sample(&mut rng);
                // Each object bursts at a fixed phase in time, derived
                // deterministically from (dataset seed, object id) so the
                // dataset stays O(1)-addressable; requests land at the
                // phase plus a heavy-tailed offset.
                let phase = SplitMix64::new(
                    (self.seed ^ 0x77c2_2d2d)
                        .wrapping_add(object.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                )
                .next_below(u);
                let off = self.zx.as_ref().expect("zx set").sample(&mut rng);
                let time = (phase + off) & (u - 1);
                (time, object)
            }
        };
        Record2d {
            x,
            y,
            bytes: self.record_bytes,
        }
    }

    /// Sequential scan of split `j`.
    pub fn scan_split(&self, j: u32) -> impl Iterator<Item = Record2d> + '_ {
        (0..self.split_records(j)).map(move |i| self.record_at(j, i))
    }

    /// Exact frequency array (row-major `u×u`), for ground truth on small
    /// domains.
    pub fn exact_frequency_array(&self) -> Vec<u64> {
        let u = usize::try_from(self.domain.u()).expect("u fits");
        let mut v = vec![0u64; u * u];
        for j in 0..self.num_splits {
            for r in self.scan_split(j) {
                v[r.x as usize * u + r.y as usize] += 1;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_in_domain() {
        let d = Dataset2d::new(
            Domain::new(6).unwrap(),
            Distribution2d::IndependentZipf {
                alpha_x: 1.1,
                alpha_y: 0.9,
            },
            5_000,
            4,
            1,
        );
        for j in 0..4 {
            for r in d.scan_split(j) {
                assert!(r.x < 64 && r.y < 64);
            }
        }
    }

    #[test]
    fn correlated_mass_near_diagonal() {
        let d = Dataset2d::new(
            Domain::new(8).unwrap(),
            Distribution2d::Correlated {
                alpha: 1.0,
                spread: 3,
            },
            20_000,
            4,
            2,
        );
        let mut near = 0u64;
        let mut total = 0u64;
        for j in 0..4 {
            for r in d.scan_split(j) {
                total += 1;
                let dist = (r.x as i64 - r.y as i64).rem_euclid(256);
                if dist <= 3 || dist >= 253 {
                    near += 1;
                }
            }
        }
        assert_eq!(near, total, "all mass within the band: {near}/{total}");
    }

    #[test]
    fn worldcup_time_object_is_correlated_and_skewed() {
        let d = Dataset2d::new(
            Domain::new(6).unwrap(),
            Distribution2d::WorldCup,
            40_000,
            4,
            5,
        );
        let u = 64usize;
        let mut cells = vec![0u64; u * u];
        for j in 0..4 {
            for r in d.scan_split(j) {
                assert!(r.x < 64 && r.y < 64);
                assert_eq!(r.bytes, WORLDCUP_RECORD_BYTES);
                cells[r.x as usize * u + r.y as usize] += 1;
            }
        }
        // Object marginal is heavy-tailed: the hottest object dominates.
        let mut objects = vec![0u64; u];
        for x in 0..u {
            for y in 0..u {
                objects[y] += cells[x * u + y];
            }
        }
        let hot = objects.iter().copied().max().unwrap();
        assert!(hot as f64 > 0.05 * 40_000.0, "hottest object: {hot}");
        // Time × object correlation: each object's requests cluster at its
        // burst phase, so per-object the hottest time bucket carries far
        // more than the uniform 1/u share.
        let y_hot = objects.iter().position(|&c| c == hot).unwrap();
        let peak = (0..u).map(|x| cells[x * u + y_hot]).max().unwrap();
        assert!(
            peak as f64 > 0.3 * hot as f64,
            "no burst phase: peak {peak} of {hot}"
        );
    }

    #[test]
    fn splits_partition_records() {
        let d = Dataset2d::new(Domain::new(4).unwrap(), Distribution2d::Uniform, 1003, 7, 3);
        let total: u64 = (0..7).map(|j| d.split_records(j)).sum();
        assert_eq!(total, 1003);
    }

    #[test]
    fn frequency_array_sums_to_n() {
        let d = Dataset2d::new(
            Domain::new(4).unwrap(),
            Distribution2d::Uniform,
            2_000,
            2,
            4,
        );
        let v = d.exact_frequency_array();
        assert_eq!(v.iter().sum::<u64>(), 2_000);
        assert_eq!(v.len(), 256);
    }

    #[test]
    fn deterministic() {
        let d = Dataset2d::new(Domain::new(5).unwrap(), Distribution2d::Uniform, 100, 2, 9);
        let a: Vec<Record2d> = d.scan_split(1).collect();
        let b: Vec<Record2d> = d.scan_split(1).collect();
        assert_eq!(a, b);
    }
}
