//! Zipf(α) sampling over an arbitrary domain size, in `O(1)` expected time
//! per draw and `O(1)` memory.
//!
//! The experiments sweep the domain up to `u = 2^32` (paper §5: `log₂ u` up
//! to 32), which rules out table-based samplers (an alias table over `2^32`
//! bins is tens of gigabytes). We instead use **rejection-inversion**
//! (Hörmann & Derflinger, 1996): invert the integral of the smooth envelope
//! `h(x) = x^{-α}` and accept/reject against the discrete mass. Acceptance
//! probability is high for all α ≥ 0, so a draw costs a couple of `exp`/`ln`
//! calls.

use crate::rng::SplitMix64;

/// A Zipf distribution over ranks `1..=n` with exponent `α ≥ 0`:
/// `P(rank = r) ∝ r^{-α}`.
///
/// Sampled ranks are returned **0-based** (`0..n`) so they can be used as
/// keys directly.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: f64,
    alpha: f64,
    /// `H(1.5) − h(1)`: lower endpoint of the envelope integral.
    h_x1: f64,
    /// `H(n + 0.5)`: upper endpoint.
    h_n: f64,
}

impl Zipf {
    /// Creates a Zipf(α) sampler over `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`, `α < 0`, or `α` is not finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "Zipf exponent must be ≥ 0, got {alpha}"
        );
        let nf = n as f64;
        let h_x1 = h_integral(1.5, alpha) - 1.0;
        let h_n = h_integral(nf + 0.5, alpha);
        Self {
            n: nf,
            alpha,
            h_x1,
            h_n,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n as u64
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one 0-based rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            let u = self.h_x1 + rng.next_f64() * (self.h_n - self.h_x1);
            let x = h_integral_inverse(u, self.alpha);
            let k = x.round().clamp(1.0, self.n);
            // Accept when u lands in the part of the envelope mass under
            // the discrete bar of k.
            if u >= h_integral(k + 0.5, self.alpha) - h(k, self.alpha) {
                return k as u64 - 1;
            }
        }
    }

    /// Exact probability mass of the 0-based rank `r` (for tests and
    /// analysis; `O(n)` the first time a normaliser is needed — callers
    /// should compute the normaliser once via [`Zipf::normalizer`]).
    pub fn pmf(&self, r: u64, normalizer: f64) -> f64 {
        h((r + 1) as f64, self.alpha) / normalizer
    }

    /// The generalised harmonic number `Σ_{r=1..n} r^{-α}`.
    pub fn normalizer(&self) -> f64 {
        (1..=self.n as u64).map(|r| h(r as f64, self.alpha)).sum()
    }
}

/// `h(x) = x^{-α}`.
#[inline]
fn h(x: f64, alpha: f64) -> f64 {
    (-alpha * x.ln()).exp()
}

/// `H(x) = ∫₁ˣ t^{-α} dt + C`, continuous in α across α = 1:
/// `(x^{1-α} − 1)/(1−α)` for α ≠ 1, `ln x` for α = 1.
#[inline]
fn h_integral(x: f64, alpha: f64) -> f64 {
    let log_x = x.ln();
    if (alpha - 1.0).abs() < 1e-12 {
        log_x
    } else {
        ((1.0 - alpha) * log_x).exp_m1() / (1.0 - alpha)
    }
}

/// Inverse of [`h_integral`].
#[inline]
fn h_integral_inverse(y: f64, alpha: f64) -> f64 {
    if (alpha - 1.0).abs() < 1e-12 {
        y.exp()
    } else {
        let t = (y * (1.0 - alpha)).max(-1.0);
        (t.ln_1p() / (1.0 - alpha)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chi_squared_ok(alpha: f64, n: u64, draws: usize) {
        let z = Zipf::new(n, alpha);
        let mut rng = SplitMix64::new(0xfeed ^ (alpha * 1000.0) as u64 ^ n);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let norm = z.normalizer();
        // Compare observed vs expected frequencies with a generous chi² cap
        // over the head of the distribution (tail bins have tiny expecteds).
        let mut chi2 = 0.0;
        let mut dof = 0;
        for r in 0..n {
            let e = z.pmf(r, norm) * draws as f64;
            if e >= 20.0 {
                let o = counts[r as usize] as f64;
                chi2 += (o - e) * (o - e) / e;
                dof += 1;
            }
        }
        assert!(dof > 0);
        // χ² mean = dof, sd = √(2·dof); allow 6 sigma.
        let bound = dof as f64 + 6.0 * (2.0 * dof as f64).sqrt();
        assert!(
            chi2 < bound,
            "α={alpha} n={n}: chi2 {chi2:.1} > {bound:.1} (dof {dof})"
        );
    }

    #[test]
    fn matches_pmf_alpha_08() {
        chi_squared_ok(0.8, 64, 200_000);
    }

    #[test]
    fn matches_pmf_alpha_11() {
        chi_squared_ok(1.1, 64, 200_000);
    }

    #[test]
    fn matches_pmf_alpha_14() {
        chi_squared_ok(1.4, 64, 200_000);
    }

    #[test]
    fn matches_pmf_alpha_exactly_one() {
        chi_squared_ok(1.0, 32, 100_000);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        chi_squared_ok(0.0, 16, 100_000);
    }

    #[test]
    fn samples_within_range_large_domain() {
        let z = Zipf::new(1 << 32, 1.1);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1 << 32);
        }
    }

    #[test]
    fn rank_zero_dominates_for_skewed() {
        let z = Zipf::new(1 << 20, 1.4);
        let mut rng = SplitMix64::new(2);
        let hits = (0..10_000).filter(|_| z.sample(&mut rng) == 0).count();
        // P(rank 1) for α=1.4 over 2^20 ≈ 1/ζ(1.4) ≈ 0.3.
        assert!(hits > 2_000, "rank 0 hit only {hits}/10000 times");
    }

    #[test]
    fn domain_of_one_always_returns_zero() {
        let z = Zipf::new(1, 1.1);
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_alpha_panics() {
        Zipf::new(10, -0.5);
    }
}
