//! A synthetic stand-in for the WorldCup'98 access-log dataset.
//!
//! The paper evaluates on the 1998 World Cup web-server logs: ~1.35 billion
//! records, each ten 4-byte fields, keyed by a derived `clientobject`
//! identifier (a unique client-id × object-id pairing) with roughly 2²⁹
//! distinct values. The raw trace is not redistributable here, so we build
//! the closest synthetic equivalent:
//!
//! * records are 40 bytes (ten 4-byte integers) — the size that matters for
//!   split counts and IO cost;
//! * the `clientobject` key is a product-of-Zipfs model: client popularity
//!   Zipf(1.2) and object popularity Zipf(1.05), combined and folded onto
//!   the key domain. This yields the heavy-tailed, "somewhat less skewed
//!   than Zipf(1.1) over the full domain" behaviour the paper observes when
//!   comparing Fig. 17/18 against the synthetic defaults, with a large
//!   distinct-key count (a sizable fraction of the domain).
//!
//! The substitution is behaviour-preserving for every algorithm in the
//! workspace: all of them interact with the data only through (a) the key
//! multiset and (b) record sizes.

use crate::rng::SplitMix64;
use crate::zipf::Zipf;
use wh_wavelet::Domain;

/// Record size of the (synthetic) WorldCup log: ten 4-byte fields.
pub const WORLDCUP_RECORD_BYTES: u32 = 40;

/// The key model for the synthetic WorldCup log.
#[derive(Debug, Clone)]
pub struct WorldCupModel {
    domain: Domain,
    clients: Zipf,
    objects: Zipf,
    object_bits: u32,
}

impl WorldCupModel {
    /// Builds the model over `domain`. Client-ids take the high bits of the
    /// key, object-ids the low bits, mirroring the paper's pairing of
    /// (client id, object id) into one 4-byte identifier.
    pub fn new(domain: Domain) -> Self {
        // Give objects ~2/3 of the bits: the trace has many more distinct
        // objects than active clients per object.
        let object_bits = (domain.log_u() * 2 / 3).clamp(1, domain.log_u());
        let client_bits = domain.log_u() - object_bits;
        Self {
            domain,
            clients: Zipf::new(1u64 << client_bits.clamp(1, 40), 1.2),
            objects: Zipf::new(1u64 << object_bits, 1.05),
            object_bits,
        }
    }

    /// Draws one `clientobject` key.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let client = if self.object_bits == self.domain.log_u() {
            0
        } else {
            self.clients.sample(rng)
        };
        let object = self.objects.sample(rng);
        // Scatter the client ranks so heavy clients are not adjacent in key
        // space (client ids in the trace are assignment-ordered, not
        // popularity-ordered).
        let scattered = client.wrapping_mul(0x2545_f491_4f6c_dd1d | 1)
            & ((1u64 << (self.domain.log_u() - self.object_bits)) - 1);
        ((scattered << self.object_bits) | object) & (self.domain.u() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_in_domain() {
        let domain = Domain::new(16).unwrap();
        let model = WorldCupModel::new(domain);
        let mut rng = SplitMix64::new(11);
        for _ in 0..50_000 {
            assert!(model.sample(&mut rng) < domain.u());
        }
    }

    #[test]
    fn heavy_tailed_but_many_distinct() {
        let domain = Domain::new(16).unwrap();
        let model = WorldCupModel::new(domain);
        let mut rng = SplitMix64::new(12);
        let mut counts = vec![0u32; 1 << 16];
        let draws = 400_000;
        for _ in 0..draws {
            counts[model.sample(&mut rng) as usize] += 1;
        }
        let distinct = counts.iter().filter(|&&c| c > 0).count();
        // Many distinct keys (the paper: ~400M distinct over 2^29 ≈ 0.75·u
        // at n ≫ u; here draws ≈ 6n/u so expect a substantial fraction).
        assert!(distinct > 10_000, "only {distinct} distinct keys");
        // ... but clearly skewed: top 1% of keys carry a large share.
        let mut sorted: Vec<u32> = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = sorted[..(1 << 16) / 100].iter().map(|&c| c as u64).sum();
        assert!(
            top1pct as f64 > 0.25 * draws as f64,
            "top 1% carries only {top1pct}/{draws}"
        );
    }

    #[test]
    fn tiny_domain_does_not_panic() {
        let domain = Domain::new(1).unwrap();
        let model = WorldCupModel::new(domain);
        let mut rng = SplitMix64::new(13);
        for _ in 0..100 {
            assert!(model.sample(&mut rng) < 2);
        }
    }
}
