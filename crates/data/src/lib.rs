//! # wh-data — seeded workload generators
//!
//! Datasets in this workspace are **lazy and position-addressable**: the key
//! of record `i` of split `j` is a pure function of `(seed, j, i)`. This
//! gives three properties the experiments need:
//!
//! 1. **No materialisation.** A "200 GB" dataset is a recipe, not bytes on
//!    disk; scanning it costs CPU only for the records actually touched.
//! 2. **Identical data for every algorithm.** Send-V and TwoLevel-S read the
//!    same logical records, so communication/SSE comparisons are apples to
//!    apples.
//! 3. **An honest RandomRecordReader.** The paper's samplers seek to `p·n_j`
//!    random record offsets inside a split (Appendix B); here sampling
//!    without replacement over positions is exact, because any position can
//!    be read in `O(1)`.
//!
//! Record payloads beyond the key are *virtual*: a [`Record`] carries its
//! on-disk size but only the key is generated, which is what makes the
//! paper's 4 B → 100 kB record-size sweep (Fig. 11) feasible at laptop
//! scale.

pub mod dataset;
pub mod file;
pub mod rng;
pub mod twod;
pub mod worldcup;
pub mod zipf;

pub use dataset::{Dataset, DatasetBuilder, Distribution, Record, SplitMeta};
pub use rng::SplitMix64;
pub use zipf::Zipf;
