//! Lazy, split-partitioned datasets.
//!
//! A [`Dataset`] models the paper's setting: `n` records with keys from
//! `[u]`, stored as `m` HDFS splits of (roughly) equal record count. The
//! record at `(split j, position i)` is produced by a pure function of the
//! dataset seed, so scans are repeatable and random access is `O(1)` — see
//! the crate docs for why.

use crate::rng::{record_seed, SplitMix64};
use crate::worldcup::WorldCupModel;
use crate::zipf::Zipf;
use wh_wavelet::Domain;

/// One logical record: a key plus its on-disk footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// 0-based key in the dataset's domain.
    pub key: u64,
    /// Total stored size of the record, key included (bytes).
    pub bytes: u32,
}

/// Static facts about one split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMeta {
    /// Split index `j ∈ 0..m`.
    pub id: u32,
    /// Number of records in the split (`n_j`).
    pub records: u64,
    /// Stored size of the split in bytes.
    pub bytes: u64,
}

/// Key distribution of a dataset.
#[derive(Debug, Clone, Copy)]
pub enum Distribution {
    /// Zipf with exponent `alpha`; rank r ↔ key r (rank 0 most frequent).
    Zipf { alpha: f64 },
    /// Zipf with ranks scattered over the domain by a fixed bijection, so
    /// heavy keys are not clustered at the left edge of the signal.
    ScrambledZipf { alpha: f64 },
    /// Uniform over the domain.
    Uniform,
    /// WorldCup-like access log (see [`crate::worldcup`]).
    WorldCup,
}

/// A reproducible, lazily generated dataset split into `m` pieces.
#[derive(Debug, Clone)]
pub struct Dataset {
    domain: Domain,
    distribution: Distribution,
    num_records: u64,
    num_splits: u32,
    record_bytes: u32,
    key_bytes: u32,
    seed: u64,
    sampler: Sampler,
}

#[derive(Debug, Clone)]
enum Sampler {
    Zipf(Zipf),
    ScrambledZipf(Zipf),
    Uniform,
    WorldCup(WorldCupModel),
}

/// Builder for [`Dataset`]; defaults mirror the scaled-down defaults of
/// DESIGN.md (α = 1.1, u = 2²⁰, n = 2²⁴, 4-byte records, 64 splits).
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    domain: Domain,
    distribution: Distribution,
    num_records: u64,
    num_splits: u32,
    record_bytes: u32,
    key_bytes: u32,
    seed: u64,
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        Self {
            domain: Domain::new(20).expect("valid default domain"),
            distribution: Distribution::Zipf { alpha: 1.1 },
            num_records: 1 << 24,
            num_splits: 64,
            record_bytes: 4,
            key_bytes: 4,
            seed: 0x77_68_64_61_74_61, // "whdata"
        }
    }
}

impl DatasetBuilder {
    /// Starts from the workspace defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the key domain.
    pub fn domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Sets the key distribution.
    pub fn distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Sets the total record count `n`.
    pub fn records(mut self, n: u64) -> Self {
        self.num_records = n;
        self
    }

    /// Sets the number of splits `m`.
    pub fn splits(mut self, m: u32) -> Self {
        self.num_splits = m;
        self
    }

    /// Sets the stored record size in bytes (≥ key size).
    pub fn record_bytes(mut self, b: u32) -> Self {
        self.record_bytes = b;
        self
    }

    /// Sets the wire size of a key (4 or 8 bytes typically).
    pub fn key_bytes(mut self, b: u32) -> Self {
        self.key_bytes = b;
        self
    }

    /// Sets the dataset seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builds the dataset.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero records/splits, record
    /// smaller than its key, more splits than records).
    pub fn build(self) -> Dataset {
        assert!(self.num_records > 0, "dataset must have records");
        assert!(self.num_splits > 0, "dataset must have splits");
        assert!(
            u64::from(self.num_splits) <= self.num_records,
            "more splits ({}) than records ({})",
            self.num_splits,
            self.num_records
        );
        assert!(
            self.record_bytes >= self.key_bytes,
            "record ({} B) smaller than key ({} B)",
            self.record_bytes,
            self.key_bytes
        );
        let sampler = match self.distribution {
            Distribution::Zipf { alpha } => Sampler::Zipf(Zipf::new(self.domain.u(), alpha)),
            Distribution::ScrambledZipf { alpha } => {
                Sampler::ScrambledZipf(Zipf::new(self.domain.u(), alpha))
            }
            Distribution::Uniform => Sampler::Uniform,
            Distribution::WorldCup => Sampler::WorldCup(WorldCupModel::new(self.domain)),
        };
        Dataset {
            domain: self.domain,
            distribution: self.distribution,
            num_records: self.num_records,
            num_splits: self.num_splits,
            record_bytes: self.record_bytes,
            key_bytes: self.key_bytes,
            seed: self.seed,
            sampler,
        }
    }
}

impl Dataset {
    /// Shorthand for the default Zipf dataset with overridable basics.
    pub fn zipf(log_u: u32, alpha: f64, n: u64, m: u32) -> Self {
        DatasetBuilder::new()
            .domain(Domain::new(log_u).expect("log_u within range"))
            .distribution(Distribution::Zipf { alpha })
            .records(n)
            .splits(m)
            .build()
    }

    /// The key domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Distribution description.
    pub fn distribution(&self) -> Distribution {
        self.distribution
    }

    /// Total records `n`.
    pub fn num_records(&self) -> u64 {
        self.num_records
    }

    /// Number of splits `m`.
    pub fn num_splits(&self) -> u32 {
        self.num_splits
    }

    /// Stored record size (bytes).
    pub fn record_bytes(&self) -> u32 {
        self.record_bytes
    }

    /// Key wire size (bytes).
    pub fn key_bytes(&self) -> u32 {
        self.key_bytes
    }

    /// Total stored size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.num_records * u64::from(self.record_bytes)
    }

    /// Dataset seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Metadata for split `j`.
    ///
    /// Records are distributed as evenly as possible: the first
    /// `n mod m` splits get one extra record.
    pub fn split_meta(&self, j: u32) -> SplitMeta {
        assert!(j < self.num_splits, "split {j} out of {}", self.num_splits);
        let m = u64::from(self.num_splits);
        let base = self.num_records / m;
        let extra = self.num_records % m;
        let records = base + u64::from(u64::from(j) < extra);
        SplitMeta {
            id: j,
            records,
            bytes: records * u64::from(self.record_bytes),
        }
    }

    /// All split metadata.
    pub fn split_metas(&self) -> Vec<SplitMeta> {
        (0..self.num_splits).map(|j| self.split_meta(j)).collect()
    }

    /// The record at `(split j, position i)` — `O(1)`.
    pub fn record_at(&self, j: u32, i: u64) -> Record {
        debug_assert!(i < self.split_meta(j).records);
        let mut rng = SplitMix64::new(record_seed(self.seed, j, i));
        let key = match &self.sampler {
            Sampler::Zipf(z) => z.sample(&mut rng),
            Sampler::ScrambledZipf(z) => scramble(z.sample(&mut rng), self.domain),
            Sampler::Uniform => rng.next_below(self.domain.u()),
            Sampler::WorldCup(w) => w.sample(&mut rng),
        };
        Record {
            key,
            bytes: self.record_bytes,
        }
    }

    /// Sequentially scans split `j`.
    pub fn scan_split(&self, j: u32) -> impl Iterator<Item = Record> + '_ {
        let records = self.split_meta(j).records;
        (0..records).map(move |i| self.record_at(j, i))
    }

    /// Draws `count` record positions of split `j` **without replacement**,
    /// reading only those records — the RandomRecordReader of Appendix B.
    ///
    /// Uses Floyd's algorithm, so memory is `O(count)` regardless of split
    /// size. Positions are returned in ascending order (as the paper's
    /// reader processes offsets from a priority queue).
    pub fn sample_split(&self, j: u32, count: u64, sample_seed: u64) -> Vec<Record> {
        let nj = self.split_meta(j).records;
        let count = count.min(nj);
        let mut chosen = wh_wavelet::hash::FxHashSet::default();
        let mut rng = SplitMix64::new(record_seed(self.seed ^ sample_seed, j, u64::MAX));
        // Floyd's sampling: for t in nj-count..nj, pick r in [0, t]; if taken,
        // use t itself.
        for t in (nj - count)..nj {
            let r = rng.next_below(t + 1);
            if !chosen.insert(r) {
                chosen.insert(t);
            }
        }
        let mut positions: Vec<u64> = chosen.into_iter().collect();
        positions.sort_unstable();
        positions
            .into_iter()
            .map(|i| self.record_at(j, i))
            .collect()
    }

    /// The exact global frequency vector, computed by a full scan.
    /// Materialises `u` counters; intended for evaluation (ground truth).
    pub fn exact_frequency_vector(&self) -> Vec<u64> {
        let mut v = vec![0u64; usize::try_from(self.domain.u()).expect("u fits in memory")];
        for j in 0..self.num_splits {
            for r in self.scan_split(j) {
                v[usize::try_from(r.key).expect("key fits usize")] += 1;
            }
        }
        v
    }
}

/// A fixed measure-preserving bijection on the domain (odd-multiplier
/// affine map modulo a power of two, then bit-avalanche masked back).
fn scramble(rank: u64, domain: Domain) -> u64 {
    let mask = domain.u() - 1;
    // Odd multiplier => bijection modulo 2^log_u.
    rank.wrapping_mul(0x9e37_79b9_7f4a_7c15 | 1) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(10).unwrap())
            .records(10_000)
            .splits(7)
            .seed(42)
            .build()
    }

    #[test]
    fn split_sizes_partition_n() {
        let ds = small();
        let total: u64 = ds.split_metas().iter().map(|s| s.records).sum();
        assert_eq!(total, 10_000);
        let min = ds.split_metas().iter().map(|s| s.records).min().unwrap();
        let max = ds.split_metas().iter().map(|s| s.records).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn scan_is_deterministic_and_matches_random_access() {
        let ds = small();
        let scanned: Vec<Record> = ds.scan_split(3).collect();
        for (i, r) in scanned.iter().enumerate() {
            assert_eq!(*r, ds.record_at(3, i as u64));
        }
        let again: Vec<Record> = ds.scan_split(3).collect();
        assert_eq!(scanned, again);
    }

    #[test]
    fn keys_stay_in_domain() {
        for dist in [
            Distribution::Zipf { alpha: 1.1 },
            Distribution::ScrambledZipf { alpha: 1.1 },
            Distribution::Uniform,
            Distribution::WorldCup,
        ] {
            let ds = DatasetBuilder::new()
                .domain(Domain::new(8).unwrap())
                .distribution(dist)
                .records(5_000)
                .splits(4)
                .build();
            for j in 0..4 {
                for r in ds.scan_split(j) {
                    assert!(r.key < 256, "{dist:?} produced key {}", r.key);
                }
            }
        }
    }

    #[test]
    fn sample_without_replacement_positions_unique() {
        let ds = small();
        let nj = ds.split_meta(0).records;
        let sample = ds.sample_split(0, nj, 1);
        assert_eq!(sample.len() as u64, nj);
        // Sampling everything equals scanning (as a multiset; positions are
        // sorted so it is exactly the scan).
        let scan: Vec<Record> = ds.scan_split(0).collect();
        assert_eq!(sample, scan);
    }

    #[test]
    fn sample_smaller_than_split() {
        let ds = small();
        let sample = ds.sample_split(2, 100, 7);
        assert_eq!(sample.len(), 100);
        for r in &sample {
            assert!(r.key < 1024);
        }
        // Different sample seeds give different samples.
        let other = ds.sample_split(2, 100, 8);
        assert_ne!(sample, other);
    }

    #[test]
    fn frequency_vector_sums_to_n() {
        let ds = small();
        let v = ds.exact_frequency_vector();
        assert_eq!(v.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn zipf_dataset_is_skewed() {
        let ds = Dataset::zipf(10, 1.4, 50_000, 5);
        let v = ds.exact_frequency_vector();
        // Head keys dominate under α=1.4.
        let head: u64 = v[..8].iter().sum();
        assert!(head > 25_000, "head mass {head}");
    }

    #[test]
    fn scramble_is_bijective() {
        let domain = Domain::new(10).unwrap();
        let mut seen = vec![false; 1024];
        for r in 0..1024u64 {
            let s = scramble(r, domain) as usize;
            assert!(!seen[s]);
            seen[s] = true;
        }
    }

    #[test]
    fn virtual_payload_sizes() {
        let ds = DatasetBuilder::new()
            .records(100)
            .splits(2)
            .record_bytes(100_000)
            .build();
        assert_eq!(ds.total_bytes(), 10_000_000);
        assert_eq!(ds.record_at(0, 0).bytes, 100_000);
    }

    #[test]
    #[should_panic(expected = "more splits")]
    fn too_many_splits_panics() {
        DatasetBuilder::new().records(3).splits(10).build();
    }
}
