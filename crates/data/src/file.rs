//! File-backed splits and the RandomRecordReader of Appendix B.
//!
//! The in-memory [`crate::Dataset`] is the workhorse of the experiment
//! harness, but the paper's sampling mappers read *files*: they seek to
//! `p·n_j` random byte offsets inside an HDFS split and read only those
//! records. This module implements that faithfully over local files, for
//! both record layouts the paper discusses:
//!
//! * **fixed-length records** — the reader computes `n_j` from the file
//!   size, draws `p·n_j` distinct record indices into a priority queue,
//!   and visits them in ascending offset order (Appendix B, first part);
//! * **variable-length records** — each record ends with a 4-byte length
//!   followed by a newline delimiter. The reader seeks to a random byte
//!   offset, scans forward to the delimiter, recovers the record start
//!   from the trailing length, and re-draws offsets that land inside an
//!   already-sampled record (Appendix B, "Remarks").
//!
//! Both readers report exactly how many bytes they touched, so IO
//! accounting stays honest when these splits feed the cost model.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::rng::SplitMix64;
use wh_wavelet::hash::FxHashSet;

/// Magic trailing delimiter for variable-length records.
const DELIM: u8 = b'\n';

/// Writes `keys` as fixed-length records of `record_bytes` each: an 8-byte
/// little-endian key followed by zero padding.
///
/// # Panics
///
/// Panics when `record_bytes < 8`.
pub fn write_fixed(path: &Path, keys: &[u64], record_bytes: u32) -> std::io::Result<()> {
    assert!(
        record_bytes >= 8,
        "fixed records need at least the 8-byte key"
    );
    let mut out = BufWriter::new(File::create(path)?);
    let pad = vec![0u8; record_bytes as usize - 8];
    for &k in keys {
        out.write_all(&k.to_le_bytes())?;
        out.write_all(&pad)?;
    }
    out.flush()
}

/// Writes `keys` as variable-length records: an 8-byte key, a payload of
/// `payload_of(key)` bytes, the 4-byte total record length, and the
/// delimiter — the layout of Appendix B's "Remarks".
pub fn write_variable(
    path: &Path,
    keys: &[u64],
    mut payload_of: impl FnMut(u64) -> u32,
) -> std::io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for &k in keys {
        let payload = payload_of(k);
        let total = 8 + payload + 4 + 1;
        out.write_all(&k.to_le_bytes())?;
        // Deterministic filler so files are byte-reproducible.
        let fill = vec![0xabu8; payload as usize];
        out.write_all(&fill)?;
        out.write_all(&total.to_le_bytes())?;
        out.write_all(&[DELIM])?;
    }
    out.flush()
}

/// A sampling read over a file split: sampled keys plus IO accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRead {
    /// Keys of the sampled records, in file order.
    pub keys: Vec<u64>,
    /// Bytes actually read from the file (including delimiter scans).
    pub bytes_read: u64,
}

/// Reader over a fixed-record-length file split.
#[derive(Debug)]
pub struct FixedSplitReader {
    file: File,
    record_bytes: u32,
    num_records: u64,
}

impl FixedSplitReader {
    /// Opens `path`; derives `n_j` from the file size.
    ///
    /// # Panics
    ///
    /// Panics when the file size is not a multiple of `record_bytes`.
    pub fn open(path: &Path, record_bytes: u32) -> std::io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        assert!(record_bytes >= 8);
        assert_eq!(
            len % u64::from(record_bytes),
            0,
            "file size {len} not a multiple of record size {record_bytes}"
        );
        Ok(Self {
            file,
            record_bytes,
            num_records: len / u64::from(record_bytes),
        })
    }

    /// Records in the split (`n_j`).
    pub fn num_records(&self) -> u64 {
        self.num_records
    }

    /// Sequentially scans all keys.
    pub fn scan(&mut self) -> std::io::Result<Vec<u64>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut reader = BufReader::new(&self.file);
        let mut keys = Vec::with_capacity(self.num_records as usize);
        let mut rec = vec![0u8; self.record_bytes as usize];
        for _ in 0..self.num_records {
            reader.read_exact(&mut rec)?;
            keys.push(u64::from_le_bytes(rec[..8].try_into().expect("8-byte key")));
        }
        Ok(keys)
    }

    /// The Appendix-B RandomRecordReader: draws `count` distinct record
    /// indices (Floyd's algorithm into a sorted queue), seeks to each in
    /// ascending order, and reads only those records.
    pub fn sample(&mut self, count: u64, seed: u64) -> std::io::Result<SampleRead> {
        let count = count.min(self.num_records);
        let mut chosen: FxHashSet<u64> = FxHashSet::default();
        let mut rng = SplitMix64::new(seed);
        if self.num_records > 0 {
            for t in (self.num_records - count)..self.num_records {
                let r = rng.next_below(t + 1);
                if !chosen.insert(r) {
                    chosen.insert(t);
                }
            }
        }
        let mut offsets: Vec<u64> = chosen.into_iter().collect();
        offsets.sort_unstable();
        let mut keys = Vec::with_capacity(offsets.len());
        let mut buf = [0u8; 8];
        for idx in &offsets {
            self.file
                .seek(SeekFrom::Start(idx * u64::from(self.record_bytes)))?;
            self.file.read_exact(&mut buf)?;
            keys.push(u64::from_le_bytes(buf));
        }
        Ok(SampleRead {
            keys,
            bytes_read: offsets.len() as u64 * u64::from(self.record_bytes),
        })
    }
}

/// Reader over a variable-record-length file split.
#[derive(Debug)]
pub struct VariableSplitReader {
    file: File,
    len: u64,
}

impl VariableSplitReader {
    /// Opens `path`.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Self { file, len })
    }

    /// File length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Sequentially scans all keys (and validates the framing).
    pub fn scan(&mut self) -> std::io::Result<Vec<u64>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut reader = BufReader::new(&self.file);
        let mut keys = Vec::new();
        let mut pos = 0u64;
        while pos < self.len {
            let mut key = [0u8; 8];
            reader.read_exact(&mut key)?;
            keys.push(u64::from_le_bytes(key));
            // Skip payload: we do not know its length until the trailer, so
            // scan forward byte-wise to the delimiter (payload filler is
            // 0xab, the length bytes precede the delimiter).
            let mut record_len = 8u64;
            let mut tail = [0u8; 1];
            let mut window = [0u8; 5];
            loop {
                reader.read_exact(&mut tail)?;
                record_len += 1;
                window.rotate_left(1);
                window[4] = tail[0];
                if tail[0] == DELIM {
                    let framed = u32::from_le_bytes(window[..4].try_into().expect("4-byte length"));
                    if u64::from(framed) == record_len {
                        break;
                    }
                }
            }
            pos += record_len;
        }
        Ok(keys)
    }

    /// The variable-length RandomRecordReader of Appendix B's "Remarks":
    /// draws `count` random byte offsets, seeks to each, scans forward to
    /// the record trailer, and derives the containing record's start. An
    /// offset landing inside an already-sampled record is re-drawn against
    /// the set of known record extents.
    pub fn sample(&mut self, count: u64, seed: u64) -> std::io::Result<SampleRead> {
        if self.len == 0 || count == 0 {
            return Ok(SampleRead {
                keys: Vec::new(),
                bytes_read: 0,
            });
        }
        let mut rng = SplitMix64::new(seed);
        // (start, len) extents of records already located, keyed by start.
        let mut extents: Vec<(u64, u64)> = Vec::new();
        let mut keys = Vec::new();
        let mut bytes_read = 0u64;
        let mut attempts = 0u64;
        let max_attempts = count * 64 + 256;
        while (keys.len() as u64) < count && attempts < max_attempts {
            attempts += 1;
            let off = rng.next_below(self.len);
            if extents.iter().any(|&(s, l)| off >= s && off < s + l) {
                continue; // inside a known record — redraw (Appendix B's H)
            }
            // Scan forward from `off` to the next trailer.
            self.file.seek(SeekFrom::Start(off))?;
            let mut window = [0u8; 5];
            let mut scanned = 0u64;
            let mut reader = BufReader::new(&self.file);
            let mut found: Option<(u64, u64)> = None; // (end_exclusive, record_len)
            loop {
                let mut b = [0u8; 1];
                if reader.read(&mut b)? == 0 {
                    break; // hit EOF mid-scan; redraw
                }
                scanned += 1;
                window.rotate_left(1);
                window[4] = b[0];
                if b[0] == DELIM && scanned >= 5 {
                    let framed = u32::from_le_bytes(window[..4].try_into().expect("4-byte length"));
                    let end = off + scanned;
                    if u64::from(framed) <= end {
                        let start = end - u64::from(framed);
                        // Validate: the offset must fall inside this record.
                        if start <= off {
                            found = Some((end, u64::from(framed)));
                            break;
                        }
                    }
                }
            }
            bytes_read += scanned;
            let Some((end, record_len)) = found else {
                continue;
            };
            let start = end - record_len;
            if extents.iter().any(|&(s, _)| s == start) {
                continue; // same record found via a different offset
            }
            // Read the key at the record start.
            self.file.seek(SeekFrom::Start(start))?;
            let mut key = [0u8; 8];
            self.file.read_exact(&mut key)?;
            bytes_read += 8;
            keys.push(u64::from_le_bytes(key));
            extents.push((start, record_len));
        }
        Ok(SampleRead { keys, bytes_read })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("wh-data-file-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn test_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| i.wrapping_mul(2654435761) % 1000).collect()
    }

    #[test]
    fn fixed_roundtrip_scan() {
        let path = tmp("fixed_scan.bin");
        let keys = test_keys(500);
        write_fixed(&path, &keys, 16).expect("write");
        let mut r = FixedSplitReader::open(&path, 16).expect("open");
        assert_eq!(r.num_records(), 500);
        assert_eq!(r.scan().expect("scan"), keys);
    }

    #[test]
    fn fixed_sample_without_replacement() {
        let path = tmp("fixed_sample.bin");
        let keys = test_keys(1000);
        write_fixed(&path, &keys, 32).expect("write");
        let mut r = FixedSplitReader::open(&path, 32).expect("open");
        let s = r.sample(100, 7).expect("sample");
        assert_eq!(s.keys.len(), 100);
        assert_eq!(s.bytes_read, 100 * 32);
        // Every sampled key is a real key (multiset membership check via
        // sampling everything).
        let all = r.sample(1000, 9).expect("full sample");
        assert_eq!(all.keys, keys, "sampling all positions = scan");
    }

    #[test]
    fn fixed_sample_deterministic_per_seed() {
        let path = tmp("fixed_det.bin");
        write_fixed(&path, &test_keys(200), 16).expect("write");
        let mut r = FixedSplitReader::open(&path, 16).expect("open");
        let a = r.sample(50, 1).expect("sample");
        let b = r.sample(50, 1).expect("sample");
        let c = r.sample(50, 2).expect("sample");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn variable_roundtrip_scan() {
        let path = tmp("var_scan.bin");
        let keys = test_keys(300);
        write_variable(&path, &keys, |k| (k % 40) as u32).expect("write");
        let mut r = VariableSplitReader::open(&path).expect("open");
        assert_eq!(r.scan().expect("scan"), keys);
    }

    #[test]
    fn variable_sample_returns_valid_distinct_records() {
        let path = tmp("var_sample.bin");
        let keys = test_keys(400);
        write_variable(&path, &keys, |k| (k % 60) as u32).expect("write");
        let mut r = VariableSplitReader::open(&path).expect("open");
        let s = r.sample(60, 11).expect("sample");
        assert_eq!(s.keys.len(), 60);
        assert!(s.bytes_read > 0);
        let valid: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        for k in &s.keys {
            assert!(valid.contains(k), "sampled key {k} not in file");
        }
    }

    #[test]
    fn variable_sample_covers_long_and_short_records() {
        // Records with wildly different lengths: longer records are hit by
        // more random offsets, but the extent bookkeeping dedupes them.
        let path = tmp("var_mixed.bin");
        let keys: Vec<u64> = (0..50).collect();
        write_variable(&path, &keys, |k| if k % 10 == 0 { 500 } else { 5 }).expect("write");
        let mut r = VariableSplitReader::open(&path).expect("open");
        let s = r.sample(30, 3).expect("sample");
        let distinct: std::collections::BTreeSet<u64> = s.keys.iter().copied().collect();
        assert_eq!(distinct.len(), s.keys.len(), "no duplicate records");
    }

    #[test]
    fn empty_file_sample_is_empty() {
        let path = tmp("empty.bin");
        write_fixed(&path, &[], 16).expect("write");
        let mut r = FixedSplitReader::open(&path, 16).expect("open");
        assert_eq!(r.sample(10, 1).expect("sample").keys.len(), 0);
    }
}
