//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the benchmarking surface its benches use: `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! mean-of-N wall-clock loop printed to stdout — adequate for relative
//! comparisons; no statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let g = self.benchmark_group(id.to_string());
        let (sample_size, measurement_time) = (g.sample_size, g.measurement_time);
        run_one(&g.name, None, None, sample_size, measurement_time, &mut f);
        g.finish();
        self
    }
}

/// A named set of benchmarks sharing throughput/timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares the amount of work per iteration, enabling rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a parameter label and a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            Some(&id),
            self.throughput,
            self.sample_size,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` under a parameter label.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &self.name,
            Some(&id),
            self.throughput,
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` label.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, preventing the result from being optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch costs ≥ ~1 ms so Instant overhead is amortised.
        let mut batch: u64 = 1;
        let batch_cost = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break dt;
            }
            batch *= 4;
        };
        let _ = batch_cost;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        let dt = start.elapsed();
        self.ns_per_iter = dt.as_nanos() as f64 / batch as f64;
    }
}

fn run_one(
    group: &str,
    id: Option<&BenchmarkId>,
    throughput: Option<Throughput>,
    sample_size: usize,
    _measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Each "sample" re-invokes the closure; keep samples modest since the
    // stub reports a mean, not a distribution.
    let samples = sample_size.clamp(1, 10);
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..samples {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        best = best.min(b.ns_per_iter);
        total += b.ns_per_iter;
    }
    let mean = total / samples as f64;
    let name = match id {
        Some(id) => format!("{group}/{}", id.label),
        None => group.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>12.1} Melem/s", n as f64 / mean * 1e3)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>12.1} MiB/s", n as f64 / mean * 1e9 / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{name:<48} mean {mean:>12.1} ns/iter (best {best:.1}){rate}");
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2).measurement_time(Duration::from_millis(10));
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
