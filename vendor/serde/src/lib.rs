//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a tiny value-model serialization framework under the
//! `serde` name: types implement [`Serialize`] / [`Deserialize`] by
//! converting to and from a JSON-like [`Value`]. There is no derive macro;
//! the one serialisable type in the workspace (`wh_core::WaveletHistogram`)
//! implements the traits by hand. `serde_json` (also vendored) renders
//! [`Value`] to JSON text and parses it back.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A JSON-like dynamic value: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer in the signed 64-bit range.
    Int(i64),
    /// Unsigned integer above `i64::MAX`, or any `u64` on serialization.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Coerces a numeric value to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Coerces a numeric value to `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            // Strict `<`: `u64::MAX as f64` rounds up to 2^64, which is
            // itself out of range.
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Coerces a numeric value to `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            // `i64::MAX as f64` rounds up to 2^63 (out of range); i64::MIN
            // is exactly -2^63 and in range.
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the serialization data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the serialization data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(Error::msg)
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(Error::msg)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash + std::str::FromStr,
    <K as std::str::FromStr>::Err: fmt::Display,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.parse().map_err(Error::msg)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

macro_rules! impl_tuple {
    ($($idx:tt : $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    };
}

impl_tuple!(0: A);
impl_tuple!(0: A, 1: B);
impl_tuple!(0: A, 1: B, 2: C);
impl_tuple!(0: A, 1: B, 2: C, 3: D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(u64, f64)> = vec![(3, 0.5), (9, -2.0)];
        let back = Vec::<(u64, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn numeric_coercions() {
        // An integral float deserializes into integer targets.
        assert_eq!(u64::from_value(&Value::Float(8.0)).unwrap(), 8);
        assert!(u64::from_value(&Value::Float(8.5)).is_err());
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
        // 2^64 / ±2^63 are out of range and must not saturate silently.
        assert!(u64::from_value(&Value::Float(18446744073709551616.0)).is_err());
        assert!(i64::from_value(&Value::Float(9223372036854775808.0)).is_err());
        assert_eq!(
            i64::from_value(&Value::Float(-9223372036854775808.0)).unwrap(),
            i64::MIN
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}
