//! Vendored, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses:
//! [`Mutex`] / [`RwLock`] without lock poisoning. Locks are delegated to
//! `std::sync`; a poisoned lock (panicking holder) is recovered instead of
//! propagating the poison, which matches `parking_lot` semantics.

use std::sync;

/// A mutual exclusion primitive. Unlike `std::sync::Mutex`, `lock` never
/// returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
