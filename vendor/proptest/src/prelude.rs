//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{Just, Strategy};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
pub use crate::{ProptestConfig, TestCaseError};

/// The `prop::` path alias used by `prop::collection::vec(..)`.
pub use crate as prop;
