//! Deterministic input generator for sampled test cases.

/// SplitMix64-based generator seeded from a (test path, case index) pair,
/// so every run of the suite replays identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a, not std's DefaultHasher: the seed must be stable across
        // Rust releases or inputs silently resample on a toolchain bump.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes().iter().chain(&case.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-high rejection sampling; unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }
}
