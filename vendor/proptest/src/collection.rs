//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// A length distribution for collection strategies: `[min, max]` inclusive.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.next_below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` given an element strategy and a size range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
