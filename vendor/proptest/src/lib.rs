//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the slice of proptest it uses: the [`proptest!`] /
//! [`prop_assert!`] macros, [`Strategy`](strategy::Strategy) with
//! `prop_map`, numeric range strategies, tuple strategies, and
//! [`collection::vec`]. Inputs are sampled from a seeded deterministic
//! generator (seed = hash of the test path, so runs are reproducible);
//! there is no shrinking — a failing case reports its sampled inputs via
//! the assertion message instead.

pub mod collection;
pub mod prelude;
pub mod rng;
pub mod strategy;

use std::fmt;

/// Per-test configuration; only the case count is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property-test case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times and runs
/// the body, failing on the first `prop_assert*` violation.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::rng::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!("{{", $(stringify!($arg), ": {:?}, ",)* "}}"),
                        $(&$arg),*
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        ::std::panic!(
                            "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case, __cfg.cases, e, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its sampled inputs) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r,
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+), __l,
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -2.5f64..4.0, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.0).contains(&y));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_respects_size_and_elements(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for &x in &v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn prop_map_and_tuples(p in ((0u64..5), 1.0f64..2.0).prop_map(|(k, c)| (k * 2, c))) {
            prop_assert!(p.0 % 2 == 0 && p.0 < 10);
            prop_assert!((1.0..2.0).contains(&p.1));
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(0.0f64..1.0, 8usize)) {
            prop_assert_eq!(v.len(), 8);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 0..50);
        let a = s.sample(&mut TestRng::for_case("t", 3));
        let b = s.sample(&mut TestRng::for_case("t", 3));
        let c = s.sample(&mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c, "different cases should (overwhelmingly) differ");
    }

    #[test]
    #[should_panic(expected = "property 'failing' failed")]
    fn failures_panic_with_inputs() {
        // No `#[test]` on the inner fn: it must not register with the
        // harness as a (deliberately failing) test of its own.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn failing(x in 0u64..100) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        failing();
    }
}
