//! The [`Strategy`] trait and the built-in input strategies.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an input type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// samples. Failing cases report their sampled inputs instead of shrinking.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // `start + f·(end−start)` can round up to exactly `end`;
                // resample to honour the half-open contract.
                loop {
                    let f = rng.next_unit_f64() as $t;
                    let v = self.start + f * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($idx:tt : $s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(0: A);
impl_tuple_strategy!(0: A, 1: B);
impl_tuple_strategy!(0: A, 1: B, 2: C);
impl_tuple_strategy!(0: A, 1: B, 2: C, 3: D);
impl_tuple_strategy!(0: A, 1: B, 2: C, 3: D, 4: E);
