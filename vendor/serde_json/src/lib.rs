//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` [`Value`] model to JSON text and parses it
//! back with a small recursive-descent parser. Covers the JSON subset the
//! workspace emits: finite numbers, strings with standard escapes, arrays,
//! and objects.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parses JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::msg("JSON cannot represent non-finite floats"));
            }
            // `{:?}` prints the shortest representation that round-trips,
            // always with a decimal point or exponent — valid JSON.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected '{kw}' at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::msg)?,
                                16,
                            )
                            .map_err(Error::msg)?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // workspace's ASCII field names; reject them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(Error::msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(u64, f64)> = vec![(0, 1.5), (7, -3.0), (1 << 40, 0.125)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\n\" : [ 1 , -2.5e1 , true , null ] } ").unwrap();
        let arr = v.get("a\n").unwrap();
        match arr {
            Value::Array(items) => {
                assert_eq!(items[0], Value::Int(1));
                assert_eq!(items[1], Value::Float(-25.0));
                assert_eq!(items[2], Value::Bool(true));
                assert_eq!(items[3], Value::Null);
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }

    #[test]
    fn string_roundtrip_with_controls() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn big_u64_preserved() {
        let n = u64::MAX;
        let json = to_string(&n).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(n, back);
    }
}
