//! Vendored, API-compatible subset of the `rand` crate (0.8-series traits).
//!
//! The build environment has no access to a crates.io registry, so this
//! crate provides the two core traits the workspace implements for its own
//! generators — [`RngCore`] and [`SeedableRng`] — plus the [`Error`] type
//! used by `try_fill_bytes`. No generator or distribution machinery is
//! included; the workspace ships its own (`wh_data::rng::SplitMix64`).

use std::fmt;

/// Error type for fallible RNG operations.
///
/// The workspace's generators are infallible; this exists so the trait
/// signatures match `rand_core`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RNG error")
    }
}

impl std::error::Error for Error {}

/// The core trait of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type, e.g. `[u8; 8]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// so that low-entropy seeds still fill the whole seed array.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_expanding() {
        let mut a = Lcg::seed_from_u64(1);
        let mut b = Lcg::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
        // Seeds 0 and 1 must diverge despite low entropy.
        let mut c = Lcg::seed_from_u64(0);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn try_fill_bytes_default_delegates() {
        let mut r = Lcg::seed_from_u64(7);
        let mut buf = [0u8; 16];
        r.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
