//! The serving tier: shard a compiled histogram across cores, serve
//! batched selectivities from epoch snapshots, and hot-swap a rebuilt
//! histogram underneath live reader threads.
//!
//! This example runs the full deployment loop the `wh-serve` crate
//! exists for: build two generations of a histogram on the MapReduce
//! engine, publish generation one to a `ServeTier`, drive concurrent
//! reader threads through per-thread `ServeHandle`s (lock-free on the
//! read path: one atomic epoch load per batch), then publish generation
//! two mid-traffic and watch every reader pick it up without blocking
//! or observing a torn snapshot. Malformed queries come back as values,
//! not panics — a bad predicate can never take down a serving thread.
//! See `docs/architecture.md` for the shard/route/merge/epoch-swap
//! dataflow.
//!
//! ```text
//! cargo run --release --example serving_tier
//! ```

use wavelet_hist::builders::{HistogramBuilder, SendV, TwoLevelS};
use wavelet_hist::data::{DatasetBuilder, Distribution};
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::query::{CompiledHistogram, QueryError};
use wavelet_hist::serve::{ServeError, ServeTier};
use wavelet_hist::wavelet::Domain;

const DATASET: u32 = 7;
const READERS: usize = 4;

fn main() {
    let dataset = DatasetBuilder::new()
        .domain(Domain::new(14).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.1 })
        .records(1 << 20)
        .splits(16)
        .seed(42)
        .build();
    let cluster = ClusterConfig::paper_cluster();
    let n = dataset.num_records();
    let u = dataset.domain().u();

    // Generation 1: a cheap sampled build, online fast. Generation 2:
    // the exact rebuild that replaces it once the cluster finishes.
    let sampled = TwoLevelS::new(8e-3, 1)
        .build(&dataset, &cluster, 40)
        .histogram;
    let exact = SendV::new().build(&dataset, &cluster, 40).histogram;
    let gen1 = CompiledHistogram::compile(&sampled);
    let gen2 = CompiledHistogram::compile(&exact);

    // One tier per process: four shards per histogram, one per core.
    let tier = ServeTier::new(READERS);
    tier.publish(DATASET, &gen1, n);
    println!(
        "published dataset {DATASET} gen {} — {} segments across {} shards",
        tier.generation(),
        gen1.num_segments(),
        tier.shards_per_histogram()
    );

    // Reader threads serve batches in a closed loop while the main
    // thread swaps the rebuilt histogram in mid-traffic.
    let (per_reader, swap_generation) = std::thread::scope(|s| {
        let workers: Vec<_> = (0..READERS)
            .map(|r| {
                let tier = &tier;
                s.spawn(move || {
                    let mut handle = tier.handle();
                    let queries: Vec<(u64, u64)> = (0..512u64)
                        .map(|i| {
                            let lo = (i * 37 + r as u64 * 11) % u;
                            (lo, (lo + 64).min(u - 1))
                        })
                        .collect();
                    let mut out = vec![0.0f64; queries.len()];
                    let (mut batches, mut post_swap) = (0u64, 0u64);
                    loop {
                        handle
                            .try_selectivity_batch_into(DATASET, &queries, &mut out)
                            .expect("well-formed batch");
                        batches += 1;
                        // Every answer in a batch comes from ONE snapshot:
                        // either all gen-1 or all gen-2, never a mix.
                        if handle.snapshot().generation() > 1 {
                            post_swap += 1;
                        } else {
                            // Epoch snapshots are monotone: once this
                            // handle has served gen 2 it can never fall
                            // back to gen 1.
                            assert_eq!(post_swap, 0);
                        }
                        if post_swap == 200 {
                            return (batches, out[0]);
                        }
                    }
                })
            })
            .collect();

        // Let the readers warm up on gen 1, then swap without stopping
        // them: publish builds the next snapshot and bumps the epoch.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let generation = tier.publish(DATASET, &gen2, n);
        (
            workers
                .into_iter()
                .map(|w| w.join().expect("reader"))
                .collect::<Vec<_>>(),
            generation,
        )
    });
    println!("\nhot-swapped to gen {swap_generation} under {READERS} live readers:");
    for (r, (batches, first)) in per_reader.iter().enumerate() {
        println!("  reader {r}: {batches} batches served, first estimate now {first:.6}");
        // Post-swap answers are the exact build's, bit for bit.
        assert_eq!(
            first.to_bits(),
            gen2.selectivity(r as u64 * 11, r as u64 * 11 + 64, n)
                .to_bits()
        );
    }

    // Bad queries are data, not crashes: the fallible path reports them
    // and the very next batch on the same handle still serves.
    let mut handle = tier.handle();
    let bad_range = handle.try_selectivity(DATASET, 10, 3);
    let bad_key = handle.try_selectivity(DATASET, 0, u + 5);
    let bad_id = handle.try_selectivity(99, 0, 1);
    println!("\nmalformed queries come back as errors:");
    for e in [&bad_range, &bad_key, &bad_id] {
        println!("  {}", e.as_ref().expect_err("rejected"));
    }
    assert!(matches!(
        bad_range,
        Err(ServeError::Query(QueryError::EmptyRange { .. }))
    ));
    assert!(matches!(
        bad_key,
        Err(ServeError::Query(QueryError::OutOfDomain { .. }))
    ));
    assert!(matches!(bad_id, Err(ServeError::UnknownDataset(99))));
    let sel = handle
        .try_selectivity(DATASET, 0, 63)
        .expect("still serving");
    println!("and the same handle keeps serving: sel[0, 63] = {sel:.6}");
}
