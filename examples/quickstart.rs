//! Quickstart: build a wavelet histogram of a 4M-record Zipf dataset with
//! the exact baseline, the paper's exact algorithm, and the paper's
//! sampling algorithm, then compare cost and quality.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wavelet_hist::builders::{HWTopk, HistogramBuilder, SendV, TwoLevelS};
use wavelet_hist::data::Dataset;
use wavelet_hist::evaluate::Evaluator;
use wavelet_hist::mapreduce::metrics::human_bytes;
use wavelet_hist::mapreduce::ClusterConfig;

fn main() {
    // A Zipf(1.1) dataset: 2^22 records over the domain [2^18], stored as
    // 64 splits — the scaled default of the experiment harness.
    let dataset = Dataset::zipf(18, 1.1, 1 << 22, 64);
    let cluster = ClusterConfig::paper_cluster();
    let k = 30;

    println!(
        "dataset: n={} records over {} in {} splits ({})",
        dataset.num_records(),
        dataset.domain(),
        dataset.num_splits(),
        human_bytes(dataset.total_bytes()),
    );

    // Ground truth for quality evaluation (one centralized scan).
    let eval = Evaluator::new(&dataset);
    println!("ideal SSE at k={k}: {:.3e}\n", eval.ideal_sse(k));

    let builders: Vec<Box<dyn HistogramBuilder>> = vec![
        Box::new(SendV::new()),
        Box::new(HWTopk::new()),
        Box::new(TwoLevelS::new(5e-3, 42)),
    ];
    println!(
        "{:<12} {:>12} {:>10} {:>8} {:>12} {:>10}",
        "algorithm", "comm", "time", "rounds", "SSE", "rel. SSE"
    );
    for b in builders {
        let r = b.build(&dataset, &cluster, k);
        println!(
            "{:<12} {:>12} {:>9.1}s {:>8} {:>12.3e} {:>9.2}%",
            b.name(),
            human_bytes(r.metrics.total_comm_bytes()),
            r.metrics.sim_time_s,
            r.metrics.rounds,
            eval.sse(&r.histogram),
            100.0 * eval.relative_sse(&r.histogram),
        );
    }

    // Use the histogram: estimate how many records fall in a key range.
    let approx = TwoLevelS::new(5e-3, 42).build(&dataset, &cluster, k);
    let lo = 0u64;
    let hi = 1023u64;
    println!(
        "\nestimated records with key in [{lo}, {hi}]: {:.0}",
        approx.histogram.range_sum(lo, hi)
    );
    let exact: f64 = {
        let v = dataset.exact_frequency_vector();
        v[lo as usize..=hi as usize].iter().map(|&c| c as f64).sum()
    };
    println!("exact answer:                              {exact:.0}");
}
