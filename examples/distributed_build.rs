//! Distributed build: run the same histogram builders once in-process and
//! once on the multi-process engine — map workers as forked child
//! processes shipping every intermediate pair over a Unix pipe in the
//! wire encoding — and check that the outputs are bit-identical while the
//! communication the paper *accounts* is now also *measured* from real
//! framed traffic.
//!
//! ```text
//! cargo run --release --example distributed_build
//! ```

use wavelet_hist::builders::{HWTopk, HistogramBuilder, SendCoef, SendV, TwoLevelS};
use wavelet_hist::data::Dataset;
use wavelet_hist::mapreduce::cost::validate_measured_shuffle;
use wavelet_hist::mapreduce::metrics::human_bytes;
use wavelet_hist::mapreduce::{ClusterConfig, EngineConfig};

fn main() {
    #[cfg(not(unix))]
    {
        eprintln!("the multi-process engine needs fork(2); nothing to demonstrate here");
        return;
    }
    #[cfg(unix)]
    {
        // A Zipf(1.1) dataset: 2^19 records over the domain [2^16] in 16
        // splits — big enough that megabytes really cross the worker pipes.
        let dataset = Dataset::zipf(16, 1.1, 1 << 19, 16);
        let cluster = ClusterConfig::paper_cluster();
        let k = 30;
        let workers = 4;

        println!(
            "dataset: n={} records over {} in {} splits; {} reducers, {workers} worker processes\n",
            dataset.num_records(),
            dataset.domain(),
            dataset.num_splits(),
            cluster.num_slaves(),
        );

        let reducers = cluster.num_slaves() as u32;
        let in_process = EngineConfig::default().with_reducers(reducers);
        let multi_process = EngineConfig::multi_process()
            .with_reducers(reducers)
            .with_map_parallelism(workers);

        let pairs: Vec<(Box<dyn HistogramBuilder>, Box<dyn HistogramBuilder>)> = vec![
            (
                Box::new(SendV::new().with_engine(in_process)),
                Box::new(SendV::new().with_engine(multi_process)),
            ),
            (
                Box::new(SendCoef::new().with_engine(in_process)),
                Box::new(SendCoef::new().with_engine(multi_process)),
            ),
            (
                Box::new(HWTopk::new().with_engine(in_process)),
                Box::new(HWTopk::new().with_engine(multi_process)),
            ),
            (
                Box::new(TwoLevelS::new(5e-3, 42).with_engine(in_process)),
                Box::new(TwoLevelS::new(5e-3, 42).with_engine(multi_process)),
            ),
        ];

        println!(
            "{:<12} {:>12} {:>14} {:>8} {:>8} {:>12} {:>10}",
            "algorithm",
            "accounted",
            "bytes on wire",
            "frames",
            "workers",
            "comm rounds",
            "identical"
        );
        for (inproc, multiproc) in pairs {
            let name = inproc.name();
            let a = inproc.build(&dataset, &cluster, k);
            let b = multiproc.build(&dataset, &cluster, k);
            let identical =
                a.histogram.coefficients() == b.histogram.coefficients() && a.metrics == b.metrics;
            assert!(identical, "{name}: engines diverged");
            // The measured pair traffic must be exactly the shuffle bytes
            // the cost model charges — the validation PR 7 exists for.
            validate_measured_shuffle(&b.metrics).expect("measured == accounted");
            println!(
                "{:<12} {:>12} {:>14} {:>8} {:>8} {:>12} {:>10}",
                name,
                human_bytes(a.metrics.shuffle_bytes),
                human_bytes(b.metrics.bytes_on_wire()),
                b.metrics.wire.frames,
                b.metrics.wire.workers,
                b.metrics.wire.comm_rounds,
                "yes",
            );
        }

        println!(
            "\nevery builder is bit-identical across the process boundary, and the\n\
             measured bytes-on-wire equal the accounted shuffle bytes exactly."
        );
    }
}
