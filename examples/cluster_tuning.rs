//! Cluster tuning: how split size (β) and available bandwidth (B) shape
//! the cost of histogram construction — the operational questions behind
//! the paper's Figs. 13 and 16.
//!
//! ```text
//! cargo run --release --example cluster_tuning
//! ```

use wavelet_hist::builders::{HWTopk, HistogramBuilder, SendV, TwoLevelS};
use wavelet_hist::data::{DatasetBuilder, Distribution};
use wavelet_hist::mapreduce::metrics::human_bytes;
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::wavelet::Domain;

fn dataset(splits: u32) -> wavelet_hist::data::Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(16).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.1 })
        .records(1 << 21)
        .splits(splits)
        .seed(3)
        .build()
}

fn main() {
    let k = 30;

    println!("=== split-size sweep (fixed data, B = 50%) ===");
    println!(
        "{:<8} {:<12} {:>14} {:>10} {:>14} {:>10}",
        "m", "beta", "Send-V comm", "time", "TwoLevel comm", "time"
    );
    for m in [16u32, 32, 64, 128, 256] {
        let ds = dataset(m);
        let cluster = ClusterConfig::paper_cluster();
        let beta = ds.total_bytes() / u64::from(m);
        let sv = SendV::new().build(&ds, &cluster, k);
        let tl = TwoLevelS::new(8e-3, 1).build(&ds, &cluster, k);
        println!(
            "{m:<8} {:<12} {:>14} {:>9.1}s {:>14} {:>9.1}s",
            human_bytes(beta),
            human_bytes(sv.metrics.total_comm_bytes()),
            sv.metrics.sim_time_s,
            human_bytes(tl.metrics.total_comm_bytes()),
            tl.metrics.sim_time_s,
        );
    }
    println!(
        "→ larger splits (smaller m) shrink everyone's communication, exactly Fig. 13;\n\
         the paper caps β at 256 MB for scheduling granularity and failure recovery.\n"
    );

    println!("=== bandwidth sweep (fixed data, m = 64) ===");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "B", "Send-V", "H-WTopk", "TwoLevel-S"
    );
    let ds = dataset(64);
    for pct in [10u32, 25, 50, 100] {
        let mut cluster = ClusterConfig::paper_cluster();
        cluster.bandwidth_fraction = pct as f64 / 100.0;
        let sv = SendV::new().build(&ds, &cluster, k);
        let hw = HWTopk::new().build(&ds, &cluster, k);
        let tl = TwoLevelS::new(8e-3, 1).build(&ds, &cluster, k);
        println!(
            "{:<8} {:>11.1}s {:>11.1}s {:>11.1}s",
            format!("{pct}%"),
            sv.metrics.sim_time_s,
            hw.metrics.sim_time_s,
            tl.metrics.sim_time_s,
        );
    }
    println!(
        "→ Send-V's time tracks bandwidth (communication-bound); the paper's\n\
         algorithms barely move — the busy-datacenter argument of Fig. 16."
    );
}
