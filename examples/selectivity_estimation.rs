//! Selectivity estimation: the original application of wavelet histograms
//! (Matias, Vitter, Wang — SIGMOD'98) and the paper's motivating use case:
//! a query optimiser asks "what fraction of records has key in [a, b]?"
//! and the histogram answers from k coefficients instead of a scan.
//!
//! This example runs the full build→serve dataflow: build the histogram
//! on the MapReduce engine, **compile** it into the `wh-query` serving
//! form, then answer predicates one at a time and as a batch (the two
//! paths are bit-identical; the batch path is how a serving tier handles
//! heavy traffic). See `docs/architecture.md` for the subsystem map.
//!
//! ```text
//! cargo run --release --example selectivity_estimation
//! ```

use wavelet_hist::builders::{HistogramBuilder, TwoLevelS};
use wavelet_hist::data::{DatasetBuilder, Distribution};
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::query::{BatchScratch, CompiledHistogram};
use wavelet_hist::wavelet::Domain;

fn main() {
    let dataset = DatasetBuilder::new()
        .domain(Domain::new(16).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.1 })
        .records(1 << 21)
        .splits(32)
        .seed(7)
        .build();
    let cluster = ClusterConfig::paper_cluster();
    let n = dataset.num_records();

    // Build once with the cheap one-round sampler…
    let result = TwoLevelS::new(8e-3, 1).build(&dataset, &cluster, 40);
    let hist = &result.histogram;
    println!(
        "histogram built: {} coefficients, {} bytes communicated, {:.1}s simulated",
        hist.len(),
        result.metrics.total_comm_bytes(),
        result.metrics.sim_time_s
    );

    // …compile it for serving (one-time; queries never touch the
    // coefficient set again)…
    let compiled = CompiledHistogram::compile(hist);
    println!(
        "compiled for serving: {} piecewise-constant segments, estimated total {:.0}\n",
        compiled.num_segments(),
        compiled.total_estimate()
    );

    // …then answer many range predicates against ground truth.
    let truth = dataset.exact_frequency_vector();
    let true_sel = |lo: u64, hi: u64| -> f64 {
        truth[lo as usize..=hi as usize]
            .iter()
            .map(|&c| c as f64)
            .sum::<f64>()
            / n as f64
    };

    let u = dataset.domain().u();
    let predicates: Vec<(u64, u64)> = vec![
        (0, 63),            // the hot head of the Zipf distribution
        (0, u / 4 - 1),     // a quarter of the domain
        (u / 4, u / 2 - 1), // the lukewarm middle
        (u / 2, u - 1),     // the cold tail
        (100, 1_000),
        (u - 4_096, u - 1),
    ];

    // Serve the whole predicate list as one batch — endpoints sorted
    // once, segments walked once. A warm serving loop reuses the scratch
    // and output buffers, so nothing here allocates per batch.
    let mut scratch = BatchScratch::new();
    let mut estimates = vec![0.0; predicates.len()];
    compiled.selectivity_batch_into(&predicates, n, &mut scratch, &mut estimates);

    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "lo", "hi", "true sel.", "est. sel.", "abs. error"
    );
    let mut worst: f64 = 0.0;
    for (&(lo, hi), &e) in predicates.iter().zip(&estimates) {
        let t = true_sel(lo, hi);
        worst = worst.max((t - e).abs());
        println!(
            "{lo:>10} {hi:>10} {t:>12.6} {e:>12.6} {:>12.6}",
            (t - e).abs()
        );
        // The batch answered exactly what single-query serving would.
        assert_eq!(e.to_bits(), compiled.selectivity(lo, hi, n).to_bits());
        // …which is the histogram's own estimate, up to segment-walk
        // float association.
        assert!((e - hist.selectivity(lo, hi, n)).abs() < 1e-9);
    }
    println!("\nworst absolute selectivity error: {worst:.6}");
    println!(
        "(the paper's guarantee: frequency error sd ≈ εn per key; range sums concentrate further)"
    );
}
