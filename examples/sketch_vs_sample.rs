//! Sketch vs sample at matched accuracy — the comparison behind the
//! paper's Fig. 9: for each quality level, how much communication and
//! time does each approximation pay?
//!
//! ```text
//! cargo run --release --example sketch_vs_sample
//! ```

use wavelet_hist::builders::{HistogramBuilder, SendSketch, SendSketchAms, TwoLevelS};
use wavelet_hist::data::Dataset;
use wavelet_hist::evaluate::Evaluator;
use wavelet_hist::mapreduce::metrics::human_bytes;
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::sketch::GcsParams;

fn main() {
    let dataset = Dataset::zipf(16, 1.1, 1 << 21, 32);
    let cluster = ClusterConfig::paper_cluster();
    let k = 30;
    let eval = Evaluator::new(&dataset);
    println!("ideal SSE at k={k}: {:.3e}\n", eval.ideal_sse(k));

    println!(
        "{:<28} {:>12} {:>10} {:>12} {:>12}",
        "configuration", "comm", "time", "SSE", "scanned"
    );

    // TwoLevel-S across accuracy levels (ε controls the sample).
    for eps in [2e-3f64, 8e-3, 3.2e-2] {
        let r = TwoLevelS::new(eps, 5).build(&dataset, &cluster, k);
        println!(
            "{:<28} {:>12} {:>9.1}s {:>12.3e} {:>12}",
            format!("TwoLevel-S eps={eps:.1e}"),
            human_bytes(r.metrics.total_comm_bytes()),
            r.metrics.sim_time_s,
            eval.sse(&r.histogram),
            r.metrics.records_scanned,
        );
    }

    // Send-Sketch across space budgets (sketch size controls accuracy).
    let domain = dataset.domain();
    for frac in [0.25f64, 1.0, 4.0] {
        let budget = (20.0 * 1024.0 * domain.log_u() as f64 * frac) as usize;
        let params = GcsParams::with_budget(domain, 8, budget, 5);
        let r = SendSketch::new(5)
            .with_params(params)
            .build(&dataset, &cluster, k);
        println!(
            "{:<28} {:>12} {:>9.1}s {:>12.3e} {:>12}",
            format!("Send-Sketch space×{frac}"),
            human_bytes(r.metrics.total_comm_bytes()),
            r.metrics.sim_time_s,
            eval.sse(&r.histogram),
            r.metrics.records_scanned,
        );
    }

    // The older AMS sketch at the default budget, for contrast: cheaper
    // updates than GCS, but its extraction probes every coefficient.
    let r = SendSketchAms::new(5).build(&dataset, &cluster, k);
    println!(
        "{:<28} {:>12} {:>9.1}s {:>12.3e} {:>12}",
        "Send-Sketch (AMS)",
        human_bytes(r.metrics.total_comm_bytes()),
        r.metrics.sim_time_s,
        eval.sse(&r.histogram),
        r.metrics.records_scanned,
    );

    println!(
        "\n→ the paper's Fig. 9 conclusion: at comparable SSE the sampler\n\
         communicates orders of magnitude less and never scans the full\n\
         dataset, while the sketch reads every record and ships dense\n\
         counter arrays."
    );
}
