//! Incremental maintenance: keep a serving histogram fresh under
//! streaming arrivals without ever rebuilding from scratch.
//!
//! The PR 9 freshness loop, end to end: seed a `MaintainedHistogram`
//! from the base splits (bit-identical to a from-scratch `Centralized`
//! build), publish its compiled snapshot to a `ServeTier`, then absorb
//! each remaining split as a delta — `O(d·log u)` per segment instead of
//! the full `O(n + u)` scan-and-transform — recompile the snapshot in
//! place, and republish at `dataset_records + delta` so selectivities
//! stay relative to *all* data. After every refresh the served histogram
//! is bit-identical to what a full rebuild on the concatenated data
//! would have published.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use std::time::Instant;

use wavelet_hist::builders::{Centralized, HistogramBuilder};
use wavelet_hist::data::{DatasetBuilder, Distribution};
use wavelet_hist::incremental::MaintainedHistogram;
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::query::CompiledHistogram;
use wavelet_hist::serve::ServeTier;
use wavelet_hist::wavelet::Domain;

const DATASET: u32 = 3;
const K: usize = 32;
const BASE_SPLITS: u32 = 12;

fn main() {
    let dataset = DatasetBuilder::new()
        .domain(Domain::new(16).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.1 })
        .records(1 << 20)
        .splits(16)
        .seed(9)
        .build();
    let u = dataset.domain().u();

    // Initial build: absorb the base splits and publish.
    let start = Instant::now();
    let mut maintained = MaintainedHistogram::new(dataset.domain(), K);
    for j in 0..BASE_SPLITS {
        maintained.merge_split(&dataset, j);
    }
    let mut compiled = CompiledHistogram::compile(&maintained.snapshot());
    let tier = ServeTier::new(4);
    tier.publish(DATASET, &compiled, maintained.total_records());
    println!(
        "seeded from {BASE_SPLITS} splits ({} records, {} distinct keys) in {:?}",
        maintained.total_records(),
        maintained.distinct_keys(),
        start.elapsed()
    );

    // Streaming phase: each remaining split arrives as a delta segment.
    for j in BASE_SPLITS..dataset.num_splits() {
        let before = maintained.total_records();
        let t = Instant::now();
        maintained.merge_split(&dataset, j);
        let delta_records = maintained.total_records() - before;
        let records = tier.dataset_records(DATASET).expect("published") + delta_records;
        let generation = tier
            .try_publish(DATASET, records, || {
                compiled.recompile(&maintained.snapshot());
                Ok::<_, std::convert::Infallible>(compiled.clone())
            })
            .expect("refresh is infallible here");
        println!(
            "split {j}: +{delta_records} records merged and republished as gen {generation} in {:?}",
            t.elapsed()
        );
    }
    assert_eq!(tier.dataset_records(DATASET), Some(dataset.num_records()));

    // The served snapshot is bit-identical to a from-scratch exact build
    // on everything that has arrived.
    let t = Instant::now();
    let scratch = Centralized::new()
        .build(&dataset, &ClusterConfig::paper_cluster(), K)
        .histogram;
    let rebuild_time = t.elapsed();
    let reference = CompiledHistogram::compile(&scratch);
    let mut handle = tier.handle();
    for x in (0..u).step_by(1013) {
        let served = handle.try_point_estimate(DATASET, x).expect("served");
        assert_eq!(served.to_bits(), reference.point_estimate(x).to_bits());
    }
    let sel = handle.try_selectivity(DATASET, 0, u / 2).expect("served");
    println!(
        "\nserved answers are bit-identical to a full rebuild (which took {rebuild_time:?}); \
         sel[0, u/2] = {sel:.6}"
    );
}
