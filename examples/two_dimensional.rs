//! Two-dimensional wavelet histograms (§3/§4 "Multi-dimensional
//! wavelets"), end to end through the PR 10 pipeline: build the 2-D
//! histogram on the MapReduce engine (`Send-Coef-2D`, shipping
//! `(u16, u16)` coefficient keys through a dense reduce), compile it
//! into the allocation-free rectangle-query form, publish it through the
//! epoch-swapped serving tier, and answer batched range-selectivity
//! queries — with the paper's simulated baselines alongside for the
//! communication comparison.
//!
//! ```text
//! cargo run --release --example two_dimensional
//! ```

use wavelet_hist::data::twod::{Dataset2d, Distribution2d};
use wavelet_hist::mapreduce::metrics::human_bytes;
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::query::CompiledHistogram2D;
use wavelet_hist::serve::ServeTier;
use wavelet_hist::twod::{centralized2d, h_wtopk2d, two_level_s2d, SendCoef2d};
use wavelet_hist::wavelet::Domain;

fn main() {
    // A diagonal band: x Zipf-distributed, y within ±4 of x — correlated
    // dimensions where 1-D marginals would lose the structure.
    let dataset = Dataset2d::new(
        Domain::new(7).expect("valid domain"),
        Distribution2d::Correlated {
            alpha: 1.1,
            spread: 4,
        },
        1 << 19,
        16,
        11,
    );
    let cluster = ClusterConfig::paper_cluster();
    let k = 48;

    println!(
        "2-D dataset: {} records over [2^7]² cells, {} splits\n",
        dataset.num_records(),
        dataset.num_splits()
    );

    // The engine-built exact path next to the simulated baselines.
    let engine = SendCoef2d::new().build(&dataset, &cluster, k);
    let exact = centralized2d(&dataset, &cluster, k);
    let hw = h_wtopk2d(&dataset, &cluster, k);
    let tl = two_level_s2d(&dataset, &cluster, k, 0.02, 9);

    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "method", "comm", "scanned", "time"
    );
    for (name, r) in [
        ("Send-Coef-2D", &engine),
        ("Centralized", &exact),
        ("H-WTopk (2-D)", &hw),
        ("TwoLevel-S (2-D)", &tl),
    ] {
        println!(
            "{name:<16} {:>12} {:>12} {:>9.1}s",
            human_bytes(r.metrics.total_comm_bytes()),
            r.metrics.records_scanned,
            r.metrics.sim_time_s,
        );
    }
    let s = engine.metrics.reduce_strategies;
    println!(
        "\nSend-Coef-2D ran on the pipelined engine \
         (reduce partitions: {} dense / {} sorted / {} merged — at this \
         [2^7]² domain the (u16,u16) key hint is above the dense-table \
         ceiling, so the engine falls back to sort/merge; at [2^6]² and \
         below it reduces densely)",
        s.dense_reduce, s.sort_at_reduce, s.merge
    );

    // The engine-built histogram reproduces the centralized top-k.
    let same = engine
        .histogram
        .coefficients()
        .iter()
        .zip(exact.histogram.coefficients())
        .all(|(a, b)| (a.1.abs() - b.1.abs()).abs() < 1e-6);
    println!("Send-Coef-2D matches centralized top-k magnitudes: {same}");

    // Serve it: compile to the summed-area form, publish to the tier,
    // and answer rectangle selectivities through a handle — the shape a
    // query optimizer's cardinality probe takes.
    let compiled = CompiledHistogram2D::compile(&engine.histogram);
    let tier = ServeTier::new(4);
    let n = dataset.num_records();
    tier.publish2d(1, &compiled, n);
    let mut handle = tier.handle();

    let u = dataset.domain().u();
    let truth = dataset.exact_frequency_array();
    let queries = [
        (0u64, 15u64, 0u64, 15u64), // dense corner of the band
        (0, u - 1, 0, u - 1),       // everything
        (32, 47, 30, 49),           // mid-band window
        (90, 110, 0, 20),           // off-diagonal: near-empty
    ];
    let mut sums = vec![0.0; queries.len()];
    handle
        .try_rectangle_sum_batch_into(1, &queries, &mut sums)
        .expect("published dataset");

    println!("\nrectangle selectivity (served vs exact):");
    for (&(xlo, xhi, ylo, yhi), &est) in queries.iter().zip(&sums) {
        let mut brute = 0u64;
        for x in xlo..=xhi {
            for y in ylo..=yhi {
                brute += truth[(x * u + y) as usize];
            }
        }
        println!(
            "  [{xlo:>3},{xhi:>3}]x[{ylo:>3},{yhi:>3}]  est {:>8.4}%   exact {:>8.4}%",
            100.0 * est / n as f64,
            100.0 * brute as f64 / n as f64,
        );
    }

    // Probe the density structure through the sampled histogram.
    println!("\ncell density estimates (TwoLevel-S vs exact):");
    for (x, y) in [(0u64, 0u64), (0, 4), (5, 5), (40, 44), (90, 20)] {
        let t = truth[(x * u + y) as usize];
        let e = tl.histogram.point_estimate(x, y);
        println!("  v({x:>3},{y:>3}) = {t:>8}   estimate {e:>10.1}");
    }
    println!("\n(on-diagonal cells are dense, off-diagonal empty — the sparse-data\n regime §4 warns about: relative error grows as density falls)");
}
