//! Two-dimensional wavelet histograms (§3/§4 "Multi-dimensional
//! wavelets"): summarise a correlated 2-D key distribution — think
//! (src_ip, dest_ip) pairs in network traffic — with the exact distributed
//! algorithm and the two-level sampler.
//!
//! ```text
//! cargo run --release --example two_dimensional
//! ```

use wavelet_hist::data::twod::{Dataset2d, Distribution2d};
use wavelet_hist::mapreduce::metrics::human_bytes;
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::twod::{centralized2d, h_wtopk2d, two_level_s2d};
use wavelet_hist::wavelet::Domain;

fn main() {
    // A diagonal band: x Zipf-distributed, y within ±4 of x — correlated
    // dimensions where 1-D marginals would lose the structure.
    let dataset = Dataset2d::new(
        Domain::new(7).expect("valid domain"),
        Distribution2d::Correlated {
            alpha: 1.1,
            spread: 4,
        },
        1 << 19,
        16,
        11,
    );
    let cluster = ClusterConfig::paper_cluster();
    let k = 48;

    println!(
        "2-D dataset: {} records over [2^7]² cells, {} splits\n",
        dataset.num_records(),
        dataset.num_splits()
    );

    let exact = centralized2d(&dataset, &cluster, k);
    let hw = h_wtopk2d(&dataset, &cluster, k);
    let tl = two_level_s2d(&dataset, &cluster, k, 0.02, 9);

    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "method", "comm", "scanned", "time"
    );
    for (name, r) in [
        ("Centralized", &exact),
        ("H-WTopk (2-D)", &hw),
        ("TwoLevel-S (2-D)", &tl),
    ] {
        println!(
            "{name:<16} {:>12} {:>12} {:>9.1}s",
            human_bytes(r.metrics.total_comm_bytes()),
            r.metrics.records_scanned,
            r.metrics.sim_time_s,
        );
    }

    // The exact distributed method reproduces the centralized result.
    let same = exact
        .histogram
        .coefficients()
        .iter()
        .zip(hw.histogram.coefficients())
        .all(|(a, b)| (a.1.abs() - b.1.abs()).abs() < 1e-6);
    println!("\nH-WTopk (2-D) matches centralized top-k magnitudes: {same}");

    // Probe the density structure through the sampled histogram.
    println!("\ncell density estimates (TwoLevel-S vs exact):");
    let truth = dataset.exact_frequency_array();
    let u = dataset.domain().u();
    for (x, y) in [(0u64, 0u64), (0, 4), (5, 5), (40, 44), (90, 20)] {
        let t = truth[(x * u + y) as usize];
        let e = tl.histogram.point_estimate(x, y);
        println!("  v({x:>3},{y:>3}) = {t:>8}   estimate {e:>10.1}");
    }
    println!("\n(on-diagonal cells are dense, off-diagonal empty — the sparse-data\n regime §4 warns about: relative error grows as density falls)");
}
