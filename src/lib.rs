//! # wavelet-hist
//!
//! A from-scratch Rust reproduction of *Building Wavelet Histograms on
//! Large Data in MapReduce* (Jestes, Yi, Li — PVLDB 5(2), 2011): exact
//! (Send-V, Send-Coef, H-WTopk) and approximate (Basic-S, Improved-S,
//! TwoLevel-S, Send-Sketch) construction of best-k-term Haar wavelet
//! histograms over split-partitioned datasets, executed on a deterministic
//! MapReduce runtime with exact communication accounting and a calibrated
//! cluster cost model.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! paths. Start with [`builders`] and the `examples/` directory.
//!
//! ```
//! use wavelet_hist::builders::{HistogramBuilder, TwoLevelS};
//! use wavelet_hist::data::Dataset;
//! use wavelet_hist::mapreduce::ClusterConfig;
//!
//! let dataset = Dataset::zipf(12, 1.1, 50_000, 8);
//! let cluster = ClusterConfig::paper_cluster();
//! let result = TwoLevelS::new(1e-2, 7).build(&dataset, &cluster, 16);
//! println!("{} — {}", result.histogram.len(), result.metrics);
//! ```

/// Seeded dataset generators (Zipf, WorldCup-like, 2-D).
pub use wh_data as data;
/// The MapReduce runtime and cluster cost model.
pub use wh_mapreduce as mapreduce;
/// The sampling algorithms (Basic-S, Improved-S, TwoLevel-S).
pub use wh_sampling as sampling;
/// Linear sketches (CountSketch, GCS, AMS).
pub use wh_sketch as sketch;
/// Distributed top-k protocols (TPUT, two-sided TPUT).
pub use wh_topk as topk;
/// Haar wavelet machinery (transforms, error tree, selection, SSE, 2-D).
pub use wh_wavelet as wavelet;

/// The query-serving layer (compiled histograms, batched selectivity).
pub use wh_query as query;
/// The serving tier (sharded snapshots, epoch swaps, per-thread handles).
pub use wh_serve as serve;

/// The histogram builders.
pub use wh_core::builders;
/// SSE evaluation against exact ground truth.
pub use wh_core::evaluate;
/// Incremental maintenance: delta-merged histograms for the freshness loop.
pub use wh_core::incremental;
/// Two-dimensional histograms.
pub use wh_core::twod;
pub use wh_core::{BuildResult, HistogramBuilder, MaintainedHistogram, WaveletHistogram};
pub use wh_query::{BatchScratch, CompiledHistogram, QueryError, ShardedHistogram};
pub use wh_serve::{ServeError, ServeHandle, ServeTier};
